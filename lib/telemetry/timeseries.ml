(* Windowed time series: per-domain shards of (name -> ring of buckets),
   bucketed on an injected virtual clock.  Mirrors Telemetry's sharding
   (writes touch only the calling domain's shard; reads merge) and its
   log-bucketed sketch, shrunk to 4 sub-buckets per octave — windows are
   short-lived, so ~9% worst-case relative error per window is a fine
   trade for 2x less memory per bucket. *)

let sub_buckets = 4
let n_sketch = 128
let origin = 96 (* sketch index of value 1.0; covers ~6e-8 .. 2.5e2 *)

let sketch_of v =
  if v <= 0.0 then 0
  else begin
    let i =
      origin + int_of_float (Float.floor (Float.log2 v *. float_of_int sub_buckets))
    in
    if i < 0 then 0 else if i >= n_sketch then n_sketch - 1 else i
  end

let sketch_mid i =
  Float.pow 2.0 ((float_of_int (i - origin) +. 0.5) /. float_of_int sub_buckets)

type kind = Counter | Dist

type bucket = {
  mutable b_index : int; (* virtual bucket index; -1 = empty slot *)
  mutable b_count : int;
  mutable b_sum : float;
  mutable b_min : float;
  mutable b_max : float;
  b_sketch : int array; (* length 0 for counter series *)
}

type series = { s_kind : kind; s_ring : bucket array }

type shard = { cells : (string, series) Hashtbl.t }

type t = {
  live : bool;
  ts_bucket_s : float;
  ts_capacity : int;
  mutable clock : unit -> float;
  shards : shard Stdx.Sharded.t;
}

let create ?(bucket_s = 1.0) ?(capacity = 128) ?(now = fun () -> 0.0) () =
  if bucket_s <= 0.0 then invalid_arg "Timeseries.create: bucket_s <= 0";
  if capacity < 1 then invalid_arg "Timeseries.create: capacity < 1";
  {
    live = true;
    ts_bucket_s = bucket_s;
    ts_capacity = capacity;
    clock = now;
    shards = Stdx.Sharded.create ~init:(fun () -> { cells = Hashtbl.create 64 }) ();
  }

let noop =
  {
    live = false;
    ts_bucket_s = 1.0;
    ts_capacity = 1;
    clock = (fun () -> 0.0);
    shards = Stdx.Sharded.create ~init:(fun () -> { cells = Hashtbl.create 1 }) ();
  }

let enabled t = t.live
let set_clock t f = if t.live then t.clock <- f
let bucket_s t = t.ts_bucket_s
let capacity t = t.ts_capacity
let now t = t.clock ()

let bucket_make dim =
  {
    b_index = -1;
    b_count = 0;
    b_sum = 0.0;
    b_min = Float.infinity;
    b_max = Float.neg_infinity;
    b_sketch = Array.make dim 0;
  }

let series_make kind capacity =
  let dim = match kind with Counter -> 0 | Dist -> n_sketch in
  { s_kind = kind; s_ring = Array.init capacity (fun _ -> bucket_make dim) }

let kind_name = function Counter -> "counter" | Dist -> "dist"

let find_series t shard kind name =
  match Hashtbl.find_opt shard.cells name with
  | Some s ->
    if s.s_kind <> kind then
      invalid_arg
        (Printf.sprintf "Timeseries: %s is a %s series, not a %s" name
           (kind_name s.s_kind) (kind_name kind));
    s
  | None ->
    let s = series_make kind t.ts_capacity in
    Hashtbl.add shard.cells name s;
    s

let index_of t tm =
  let i = int_of_float (Float.floor (tm /. t.ts_bucket_s)) in
  if i < 0 then 0 else i

(* Claim the ring slot for virtual bucket [idx], evicting whatever older
   window occupied it. *)
let slot_for s ~idx =
  let b = s.s_ring.(idx mod Array.length s.s_ring) in
  if b.b_index <> idx then begin
    b.b_index <- idx;
    b.b_count <- 0;
    b.b_sum <- 0.0;
    b.b_min <- Float.infinity;
    b.b_max <- Float.neg_infinity;
    Array.fill b.b_sketch 0 (Array.length b.b_sketch) 0
  end;
  b

let add t ?t:tm ?(by = 1.0) name =
  if t.live then begin
    let tm = match tm with Some x -> x | None -> t.clock () in
    let shard = Stdx.Sharded.get t.shards in
    let s = find_series t shard Counter name in
    let b = slot_for s ~idx:(index_of t tm) in
    b.b_count <- b.b_count + 1;
    b.b_sum <- b.b_sum +. by
  end

let observe t ?t:tm name v =
  if t.live then begin
    let tm = match tm with Some x -> x | None -> t.clock () in
    let shard = Stdx.Sharded.get t.shards in
    let s = find_series t shard Dist name in
    let b = slot_for s ~idx:(index_of t tm) in
    b.b_count <- b.b_count + 1;
    b.b_sum <- b.b_sum +. v;
    if v < b.b_min then b.b_min <- v;
    if v > b.b_max then b.b_max <- v;
    let i = sketch_of v in
    b.b_sketch.(i) <- b.b_sketch.(i) + 1
  end

(* ---------- merged reads ---------- *)

type window = {
  w_index : int;
  w_count : int;
  w_sum : float;
  w_min : float;
  w_max : float;
  w_p50 : float;
  w_p90 : float;
  w_p99 : float;
}

type merged = {
  mutable m_count : int;
  mutable m_sum : float;
  mutable m_min : float;
  mutable m_max : float;
  m_sketch : int array;
}

let merged_make () =
  {
    m_count = 0;
    m_sum = 0.0;
    m_min = Float.infinity;
    m_max = Float.neg_infinity;
    m_sketch = Array.make n_sketch 0;
  }

let merge_bucket_into m (b : bucket) =
  m.m_count <- m.m_count + b.b_count;
  m.m_sum <- m.m_sum +. b.b_sum;
  if b.b_min < m.m_min then m.m_min <- b.b_min;
  if b.b_max > m.m_max then m.m_max <- b.b_max;
  Array.iteri (fun i n -> if n > 0 then m.m_sketch.(i) <- m.m_sketch.(i) + n) b.b_sketch

let sketch_quantile m q =
  if m.m_count = 0 then 0.0
  else if q <= 0.0 then m.m_min
  else if q >= 1.0 then m.m_max
  else begin
    let target = Float.max 1.0 (Float.ceil (q *. float_of_int m.m_count)) in
    let cum = ref 0 in
    let found = ref (n_sketch - 1) in
    let i = ref 0 in
    let continue = ref true in
    while !continue && !i < n_sketch do
      cum := !cum + m.m_sketch.(!i);
      if float_of_int !cum >= target then begin
        found := !i;
        continue := false
      end;
      incr i
    done;
    Float.min m.m_max (Float.max m.m_min (sketch_mid !found))
  end

(* All (index -> merged bucket) pairs of a series across shards, plus its
   kind; newest [capacity] indices only, ascending. *)
let merged_windows t name =
  let kind = ref None in
  let by_index : (int, merged) Hashtbl.t = Hashtbl.create 64 in
  Stdx.Sharded.iter t.shards ~f:(fun shard ->
      match Hashtbl.find_opt shard.cells name with
      | None -> ()
      | Some s ->
        (kind := match !kind with None -> Some s.s_kind | k -> k);
        Array.iter
          (fun b ->
            if b.b_index >= 0 then begin
              let m =
                match Hashtbl.find_opt by_index b.b_index with
                | Some m -> m
                | None ->
                  let m = merged_make () in
                  Hashtbl.add by_index b.b_index m;
                  m
              in
              merge_bucket_into m b
            end)
          s.s_ring);
  let idxs = Hashtbl.fold (fun i _ acc -> i :: acc) by_index [] in
  let idxs = List.sort compare idxs in
  let n = List.length idxs in
  let idxs = if n > t.ts_capacity then List.filteri (fun i _ -> i >= n - t.ts_capacity) idxs else idxs in
  (!kind, List.map (fun i -> (i, Hashtbl.find by_index i)) idxs)

let window_of_merged kind (idx, m) =
  let dist = kind = Some Dist && m.m_count > 0 in
  {
    w_index = idx;
    w_count = m.m_count;
    w_sum = m.m_sum;
    w_min = (if dist then m.m_min else 0.0);
    w_max = (if dist then m.m_max else 0.0);
    w_p50 = (if dist then sketch_quantile m 0.50 else 0.0);
    w_p90 = (if dist then sketch_quantile m 0.90 else 0.0);
    w_p99 = (if dist then sketch_quantile m 0.99 else 0.0);
  }

let windows t name =
  let kind, ws = merged_windows t name in
  List.map (window_of_merged kind) ws

let kind_of t name =
  Stdx.Sharded.fold t.shards ~init:None ~f:(fun acc shard ->
      match acc with
      | Some _ -> acc
      | None -> (
        match Hashtbl.find_opt shard.cells name with
        | Some { s_kind = Counter; _ } -> Some `Counter
        | Some { s_kind = Dist; _ } -> Some `Dist
        | None -> None))

let names t =
  let set = Hashtbl.create 64 in
  Stdx.Sharded.iter t.shards ~f:(fun shard ->
      Hashtbl.iter (fun name _ -> Hashtbl.replace set name ()) shard.cells);
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) set [])

type agg = {
  a_count : int;
  a_sum : float;
  a_min : float;
  a_max : float;
  a_p50 : float;
  a_p90 : float;
  a_p99 : float;
  a_windows : int;
}

let zero_agg =
  {
    a_count = 0;
    a_sum = 0.0;
    a_min = 0.0;
    a_max = 0.0;
    a_p50 = 0.0;
    a_p90 = 0.0;
    a_p99 = 0.0;
    a_windows = 0;
  }

let aggregate ?last t name =
  let kind, ws = merged_windows t name in
  let ws =
    match last with
    | None -> ws
    | Some k ->
      if k <= 0 then []
      else begin
        let n = List.length ws in
        if n > k then List.filteri (fun i _ -> i >= n - k) ws else ws
      end
  in
  if ws = [] then zero_agg
  else begin
    let m = merged_make () in
    List.iter
      (fun (_, w) ->
        m.m_count <- m.m_count + w.m_count;
        m.m_sum <- m.m_sum +. w.m_sum;
        if w.m_min < m.m_min then m.m_min <- w.m_min;
        if w.m_max > m.m_max then m.m_max <- w.m_max;
        Array.iteri
          (fun i n -> if n > 0 then m.m_sketch.(i) <- m.m_sketch.(i) + n)
          w.m_sketch)
      ws;
    let dist = kind = Some Dist && m.m_count > 0 in
    {
      a_count = m.m_count;
      a_sum = m.m_sum;
      a_min = (if dist then m.m_min else 0.0);
      a_max = (if dist then m.m_max else 0.0);
      a_p50 = (if dist then sketch_quantile m 0.50 else 0.0);
      a_p90 = (if dist then sketch_quantile m 0.90 else 0.0);
      a_p99 = (if dist then sketch_quantile m 0.99 else 0.0);
      a_windows = List.length ws;
    }
  end

let quantile ?last t name q =
  if Float.is_nan q || q < 0.0 || q > 1.0 then
    invalid_arg "Timeseries.quantile: q outside [0, 1]";
  let kind, ws = merged_windows t name in
  let ws =
    match last with
    | None -> ws
    | Some k ->
      if k <= 0 then []
      else begin
        let n = List.length ws in
        if n > k then List.filteri (fun i _ -> i >= n - k) ws else ws
      end
  in
  ignore kind;
  if ws = [] then 0.0
  else begin
    let m = merged_make () in
    List.iter (fun (_, w) ->
        m.m_count <- m.m_count + w.m_count;
        m.m_sum <- m.m_sum +. w.m_sum;
        if w.m_min < m.m_min then m.m_min <- w.m_min;
        if w.m_max > m.m_max then m.m_max <- w.m_max;
        Array.iteri
          (fun i n -> if n > 0 then m.m_sketch.(i) <- m.m_sketch.(i) + n)
          w.m_sketch)
      ws;
    sketch_quantile m q
  end

(* ---------- deterministic JSON ---------- *)

let json_of t =
  let series =
    List.map
      (fun name ->
        let kind, ws = merged_windows t name in
        let kind = match kind with Some k -> k | None -> Counter in
        let window_json w =
          let w = window_of_merged (Some kind) w in
          let base =
            [
              ("index", Json.Num (float_of_int w.w_index));
              ("count", Json.Num (float_of_int w.w_count));
              ("sum", Json.Num w.w_sum);
            ]
          in
          let dist =
            if kind = Dist then
              [
                ("min", Json.Num w.w_min);
                ("max", Json.Num w.w_max);
                ("p50", Json.Num w.w_p50);
                ("p90", Json.Num w.w_p90);
                ("p99", Json.Num w.w_p99);
              ]
            else []
          in
          Json.Obj (base @ dist)
        in
        ( name,
          Json.Obj
            [
              ("kind", Json.Str (kind_name kind));
              ("windows", Json.Arr (List.map window_json ws));
            ] ))
      (names t)
  in
  Json.Obj
    [
      ("bucket_s", Json.Num t.ts_bucket_s);
      ("capacity", Json.Num (float_of_int t.ts_capacity));
      ("series", Json.Obj series);
    ]

let write_json t ~path =
  let oc = open_out path in
  output_string oc (Json.to_string (json_of t));
  output_char oc '\n';
  close_out oc

(* ---------- dump parsing ---------- *)

type dump = {
  d_bucket_s : float;
  d_capacity : int;
  d_series : (string * [ `Counter | `Dist ] * window list) list;
}

let dump_of_json json =
  let open Json in
  let num ?(default = None) obj key =
    match member key obj with
    | Some (Num f) -> Ok f
    | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing numeric field %S" key))
    | Some _ -> Error (Printf.sprintf "field %S is not a number" key)
  in
  let ( let* ) = Result.bind in
  let window_of obj =
    let* index = num obj "index" in
    let* count = num obj "count" in
    let* sum = num obj "sum" in
    let* mn = num ~default:(Some 0.0) obj "min" in
    let* mx = num ~default:(Some 0.0) obj "max" in
    let* p50 = num ~default:(Some 0.0) obj "p50" in
    let* p90 = num ~default:(Some 0.0) obj "p90" in
    let* p99 = num ~default:(Some 0.0) obj "p99" in
    Ok
      {
        w_index = int_of_float index;
        w_count = int_of_float count;
        w_sum = sum;
        w_min = mn;
        w_max = mx;
        w_p50 = p50;
        w_p90 = p90;
        w_p99 = p99;
      }
  in
  let rec map_result f = function
    | [] -> Ok []
    | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)
  in
  let series_of (name, j) =
    match j with
    | Obj _ ->
      let kind =
        match member "kind" j with
        | Some (Str "dist") -> Ok `Dist
        | Some (Str "counter") | None -> Ok `Counter
        | _ -> Error (Printf.sprintf "series %S: bad kind" name)
      in
      let* kind = kind in
      let* ws =
        match member "windows" j with
        | Some (Arr items) -> map_result window_of items
        | _ -> Error (Printf.sprintf "series %S: missing windows" name)
      in
      Ok (name, kind, ws)
    | _ -> Error (Printf.sprintf "series %S is not an object" name)
  in
  match json with
  | Obj _ ->
    let* bucket_s = num ~default:(Some 1.0) json "bucket_s" in
    let* cap = num ~default:(Some 128.0) json "capacity" in
    let* series =
      match member "series" json with
      | Some (Obj fields) -> map_result series_of fields
      | None -> Ok []
      | Some _ -> Error "field \"series\" is not an object"
    in
    Ok { d_bucket_s = bucket_s; d_capacity = int_of_float cap; d_series = series }
  | _ -> Error "series dump is not a JSON object"

let dump_of_string s =
  match Json.of_string s with
  | Error e -> Error e
  | Ok json -> dump_of_json json
