open Import

let app_of_kind = function
  | Churn.Cache -> Cache.service
  | Churn.Heavy_hitter -> Heavy_hitter.service
  | Churn.Load_balancer -> Cheetah_lb.service
  | Churn.Flow_counter -> Activermt_apps.Counter.service
  | Churn.Bloom_filter -> Activermt_apps.Bloom.service

let arrival_of ~fid kind ~block_bytes =
  let app = app_of_kind kind in
  (* Demands are authored in the default 1 KB blocks; keep byte demand
     constant when granularity changes. *)
  let scale d = max 1 (((d * 1024) + block_bytes - 1) / block_bytes) in
  {
    Allocator.fid;
    spec = App.spec app;
    elastic = app.App.elastic;
    demand_blocks =
      (if app.App.elastic then Array.copy app.App.demand_blocks
       else Array.map scale app.App.demand_blocks);
  }

type epoch_stats = {
  epoch : int;
  arrivals : int;
  admitted : int;
  failed : int;
  alloc_time_s : float;
  utilization : float;
  residents : int;
  cache_residents : int;
  cache_reallocated : int;
  fairness : float;
}

type run_result = {
  epochs : epoch_stats list;
  final_utilization : float;
  total_failures : int;
}

let run ?scheme ?policy ~params trace =
  let block_bytes = Rmt.Params.bytes_per_block params in
  let alloc = Allocator.create ?scheme ?policy params in
  let kinds : (int, Churn.kind) Hashtbl.t = Hashtbl.create 256 in
  let is_cache fid =
    match Hashtbl.find_opt kinds fid with
    | Some Churn.Cache -> true
    | Some
        ( Churn.Heavy_hitter | Churn.Load_balancer | Churn.Flow_counter
        | Churn.Bloom_filter )
    | None ->
      false
  in
  let total_failures = ref 0 in
  let epoch_stats (e : Churn.epoch) =
    let arrivals = ref 0 and admitted = ref 0 and failed = ref 0 in
    let time = ref 0.0 in
    let reallocated = Hashtbl.create 8 in
    let note_realloc fids =
      List.iter
        (fun fid -> if is_cache fid then Hashtbl.replace reallocated fid ())
        fids
    in
    List.iter
      (fun ev ->
        match ev with
        | Churn.Arrive { fid; kind; _ } -> (
          incr arrivals;
          Hashtbl.replace kinds fid kind;
          match Allocator.admit alloc (arrival_of ~fid kind ~block_bytes) with
          | Allocator.Admitted adm ->
            incr admitted;
            time := !time +. adm.Allocator.compute_time_s;
            note_realloc (List.map fst adm.Allocator.reallocated)
          | Allocator.Rejected r ->
            incr failed;
            incr total_failures;
            Hashtbl.remove kinds fid;
            time := !time +. r.Allocator.compute_time_s)
        | Churn.Depart { fid } ->
          let expanded = Allocator.depart alloc ~fid in
          Hashtbl.remove kinds fid;
          note_realloc (List.map fst expanded))
      e.Churn.events;
    let resident_fids = Allocator.resident alloc in
    let cache_fids = List.filter is_cache resident_fids in
    let cache_blocks =
      List.map (fun fid -> float_of_int (Allocator.app_blocks alloc ~fid)) cache_fids
    in
    (* "The expectation that any given instance will be reallocated"
       (Section 6.1): count only instances still resident at epoch end. *)
    let reallocated_resident =
      List.length (List.filter (Hashtbl.mem reallocated) cache_fids)
    in
    {
      epoch = e.Churn.index;
      arrivals = !arrivals;
      admitted = !admitted;
      failed = !failed;
      alloc_time_s = !time;
      utilization = Allocator.utilization alloc;
      residents = List.length resident_fids;
      cache_residents = List.length cache_fids;
      cache_reallocated = reallocated_resident;
      fairness = Stats.jain_fairness cache_blocks;
    }
  in
  let epochs = List.map epoch_stats trace in
  {
    epochs;
    final_utilization = Allocator.utilization alloc;
    total_failures = !total_failures;
  }
