(** The fleet health-plane scenario: drive the quick fleetscale,
    chaos and tenants workloads with windowed series enabled, evaluate
    the standing SLOs and watchdogs, and emit a deterministic health
    report.

    Everything in the report derives from virtual clocks (admission
    epochs, the chaos engine, the vswitch's modeled clock), so two
    same-seed runs produce byte-identical reports — CI [cmp]s them.

    [inject_flap_storm] forces a breach for drill/CI purposes: the pod-0
    uplink flaps [storm_flaps] times inside one window, tripping the
    route-locality watchdog ([route.locality_storm]) with a [Page]
    incident whose [trace_ids] link the offending [topology.flap]
    flight-recorder traces. *)

module Slo = Activermt_health.Slo
module Monitor = Activermt_health.Monitor

type config = {
  seed : int;
  fleet_k : int;  (** fat-tree arity *)
  fleet_pods : int;
  fleet_services : int;
  fleet_batch : int;
  fail_switches : int;  (** switches of pod 1 taken down, one per window *)
  chaos_services : int;
  tenants : int;
  inject_flap_storm : bool;
  storm_flaps : int;  (** flap transitions the storm injects *)
}

val quick_config : config
(** k=8 x 6 pods (64 switches), 1500 services, 16 chaos services,
    8 tenants, no storm, seed 9001. *)

val default_config : config
(** The quick fleetscale shape (5000 services); otherwise as
    {!quick_config}. *)

val standing_slos : config -> Slo.t list
(** The SLO set the scenario evaluates: admission p99, chaos
    completion, tenant Jain fairness, route-repair locality, fleet
    rejection rate. *)

type result = {
  evaluations : Slo.evaluation list;
  incidents : Monitor.incident list;
  healthy : bool;  (** no [Page] incident *)
  monitor : Monitor.t;  (** series registry reachable via {!Monitor.series} *)
  report : Activermt_telemetry.Json.t;  (** deterministic full report *)
}

val run : ?log:(string -> unit) -> config -> result

val summary_lines : result -> string list
(** Deterministic SLO table + incident summary, one line each — what
    the [healthcheck] CLI prints and CI tees to the step summary. *)
