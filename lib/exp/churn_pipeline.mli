open Import

(** Large-scale client churn through the batched admission pipeline.

    Replays a {!Churn.zipf_churn} trace (Zipf program popularity,
    steady-state residency) at the allocator level: each epoch's arrivals
    go through {!Allocator.admit_batch} and its table work is charged as
    one batched write session ({!Cost_model.breakdown_batched}).

    Two clocks, kept strictly apart:
    - a {e modeled} virtual clock (allocation compute excluded, costs from
      the {!Cost_model}) drives epoch timing and the time-to-service
      distribution — every derived field is bit-identical across machines
      and reruns for a given seed, so CI can [cmp] the artifacts;
    - a {e measured} wall clock accumulates only the [admit_batch] calls
      ([admit_wall_s], [arrivals_per_sec]) — the admission-throughput
      numbers benches gate on, never byte-compared.

    Time-to-service: after [calibration_epochs] epochs fix the mean epoch
    duration, arrivals are spaced openly at ~90% of the pipeline's
    admission rate; a client's service time is the end of the epoch that
    admitted it minus its arrival time. *)

type result = {
  clients : int;
  batch : int;
  epochs : int;
  admitted : int;
  rejected : int;
  rescored : int;  (** conflict fallbacks across all epochs *)
  memo_hits : int;
  stage_refills : int;
  refills_saved : int;
  departures : int;
  final_residents : int;
  final_utilization : float;
  p50_tts_ms : float;  (** modeled time-to-service, admitted clients *)
  p99_tts_ms : float;
  max_tts_ms : float;
  modeled_span_s : float;  (** total virtual control-plane time *)
  modeled_arrivals_per_sec : float;
  admit_wall_s : float;  (** measured: sum of [admit_batch] wall time *)
  arrivals_per_sec : float;  (** measured: clients / [admit_wall_s] *)
}

val calibration_epochs : int

val run :
  ?scheme:Allocator.scheme ->
  ?policy:Mutant.policy ->
  ?cost:Cost_model.t ->
  ?telemetry:Telemetry.t ->
  ?series:Timeseries.t ->
  ?tracer:Trace.t ->
  ?clock:(unit -> float) ->
  params:Rmt.Params.t ->
  seed:int ->
  Churn.zipf_config ->
  result
(** [clock] (default [Sys.time]) feeds only the measured fields.  Pass a
    [tracer] to record per-epoch [churn.epoch] spans (head-sampled) with
    the allocator's batch spans beneath them. *)
