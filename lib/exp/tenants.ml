open Import

type config = {
  tenants : int;
  hostile_factor : int;
  demand_blocks : int;
  services_per_tenant : int;
  max_batch : int;
  seed : int;
}

(* 16-word blocks keep the memsync drain of an evicted service cheap
   (demand_blocks * 16 words per region) without changing the block
   economy the allocator reasons about. *)
let scenario_params =
  { Rmt.Params.default with Rmt.Params.words_per_stage = 4096 }

let capacity_of (params : Rmt.Params.t) =
  params.Rmt.Params.logical_stages * params.Rmt.Params.blocks_per_stage

(* Scale the per-service demand with the fair share so well-behaved
   tenants can offer their whole entitlement in a handful of services:
   large shares get chunky 16-block services, tiny shares (hundreds of
   tenants) get 2-block ones — which also keeps the resident service
   count under the per-stage TCAM ceiling. *)
let preset ?(params = scenario_params) ~tenants () =
  if tenants < 2 then invalid_arg "Tenants.preset: need at least 2 tenants";
  let fair = capacity_of params / tenants in
  let demand = max 2 (min 16 (fair / 40)) in
  {
    tenants;
    hostile_factor = 10;
    demand_blocks = demand;
    services_per_tenant = max 1 (fair / demand);
    max_batch = 64;
    seed = 7;
  }

type tenant_outcome = {
  tenant : int;
  weight : int;
  hostile : bool;
  offered_blocks : int;
  granted_blocks : int;
  fair_blocks : float;
  retained : float;
}

type result = {
  config : config;
  capacity_blocks : int;
  effective_capacity_blocks : int;
  per_tenant : tenant_outcome list;
  jain_wb : float;
  min_retained_wb : float;
  granted : int;
  denied_quota : int;
  denied_capacity : int;
  evictions : int;
  relocations : int;
  deferrals : int;
  epochs : int;
  p50_admit_s : float;
  p99_admit_s : float;
  modeled_span_s : float;
  consistent : bool;
  admit_wall_s : float;
}

let hostile_tenant = 0

(* The tenants' service: the flow counter rebased to the scenario's
   per-service demand (still one memory access, still inelastic, so a
   service's charge equals its allocator footprint exactly). *)
let service_app demand =
  let t =
    {
      Counter.service with
      App.name = Printf.sprintf "tenant-svc-%db" demand;
      demand_blocks = [| demand |];
    }
  in
  match App.validate t with Ok t -> t | Error e -> invalid_arg e

(* The achievable block capacity for this service class: program shape
   constrains which stages the memory access can land on (the mutant
   enumeration inserts at most so many leading NOPs), so part of the raw
   pool is unreachable for a homogeneous workload.  Probe it by filling
   a scratch allocator until the first rejection — entitlements and the
   fairness gates must be computed against blocks preemption can
   actually deliver. *)
let probe_capacity params app =
  let alloc = Allocator.create ~telemetry:(Telemetry.create ()) params in
  let spec = App.spec app in
  let demand = Array.fold_left ( + ) 0 app.App.demand_blocks in
  let rec go fid acc =
    let arrival =
      {
        Allocator.fid;
        spec;
        elastic = app.App.elastic;
        demand_blocks = Array.copy app.App.demand_blocks;
      }
    in
    match Allocator.admit alloc arrival with
    | Allocator.Admitted _ -> go (fid + 1) (acc + demand)
    | Allocator.Rejected _ -> acc
  in
  let blocks = go 1 0 in
  Allocator.shutdown alloc;
  blocks

let run ?(params = scenario_params) ?telemetry ?(series = Timeseries.noop)
    ?tracer ?(clock = Sys.time) config =
  if config.tenants < 2 then invalid_arg "Tenants.run: need at least 2 tenants";
  if config.hostile_factor < 1 then
    invalid_arg "Tenants.run: hostile_factor < 1";
  if config.demand_blocks < 1 || config.services_per_tenant < 1 then
    invalid_arg "Tenants.run: non-positive demand";
  let telemetry =
    match telemetry with Some t -> t | None -> Telemetry.create ()
  in
  let tracer = match tracer with Some t -> t | None -> Trace.noop in
  let device = Rmt.Device.create params in
  let ctrl = Controller.create ~telemetry ~series ~tracer device in
  let registry = Tenant.create ~telemetry () in
  for id = 0 to config.tenants - 1 do
    let name = if id = hostile_tenant then "hostile" else Printf.sprintf "t%d" id in
    ignore (Tenant.register registry ~name id)
  done;
  let app = service_app config.demand_blocks in
  let effective_capacity = probe_capacity params app in
  let vs =
    Vswitch.create ~series
      ~config:
        {
          Vswitch.default_config with
          Vswitch.max_batch = config.max_batch;
          entitlement_capacity = Some effective_capacity;
        }
      ~telemetry ~tracer ~registry ctrl
  in
  let next_fid = ref 1 in
  let submit tenant =
    let fid = !next_fid in
    incr next_fid;
    Vswitch.submit vs ~tenant ~fid app
  in
  let admit_wall = ref 0.0 in
  let drain () =
    let t0 = clock () in
    let epochs = Vswitch.drain vs in
    admit_wall := !admit_wall +. (clock () -. t0);
    epochs
  in
  (* Phase 1 — the flood: the hostile tenant alone offers [factor] times
     its fair share and, with nobody else contending yet, grabs as much
     of the switch as the allocator will give it. *)
  for _ = 1 to config.hostile_factor * config.services_per_tenant do
    submit hostile_tenant
  done;
  let phase1 = drain () in
  (* Phase 2 — entitled arrivals: every well-behaved tenant offers (at
     most) its fair share, in seed-shuffled interleaved order.  Their
     capacity rejections mark the pool contended and preemption unwinds
     the hostile flood, freshest services first. *)
  let order =
    Array.concat
      (List.init (config.tenants - 1) (fun i ->
           Array.make config.services_per_tenant (i + 1)))
  in
  Prng.shuffle (Prng.create ~seed:config.seed) order;
  Array.iter submit order;
  let phase2 = drain () in
  let epochs = List.length phase1 + List.length phase2 in
  let capacity = capacity_of params in
  let per_tenant =
    List.map
      (fun info ->
        let id = info.Tenant.id in
        let hostile = id = hostile_tenant in
        let services =
          if hostile then config.hostile_factor * config.services_per_tenant
          else config.services_per_tenant
        in
        let offered = services * config.demand_blocks in
        let granted = (Tenant.usage registry id).Tenant.blocks in
        let fair =
          Tenant.fair_blocks registry ~tenant:id ~capacity:effective_capacity
        in
        let entitled = Float.min (float_of_int offered) fair in
        {
          tenant = id;
          weight = info.Tenant.weight;
          hostile;
          offered_blocks = offered;
          granted_blocks = granted;
          fair_blocks = fair;
          retained =
            (if entitled <= 0.0 then 1.0 else float_of_int granted /. entitled);
        })
      (Tenant.tenants registry)
  in
  let wb = List.filter (fun o -> not o.hostile) per_tenant in
  let jain_wb = Stats.jain_fairness (List.map (fun o -> o.retained) wb) in
  Timeseries.observe series ~t:(Vswitch.modeled_clock vs) "tenant.jain" jain_wb;
  let min_retained_wb =
    List.fold_left (fun acc o -> Float.min acc o.retained) infinity wb
  in
  let lats = List.map (fun (_, _, l) -> l) (Vswitch.admission_latencies vs) in
  let pct p = match lats with [] -> 0.0 | _ -> Stats.percentile lats p in
  (* Zero-FID-loss audit: the allocator's residents, the vswitch's
     Granted decisions and the parked set must tile the submitted FIDs
     with no overlap. *)
  let resident = Hashtbl.create 256 in
  List.iter
    (fun (fid, _) -> Hashtbl.replace resident fid ())
    (Allocator.resident_blocks (Controller.allocator ctrl));
  let consistent = ref true in
  let n_granted = ref 0 in
  for fid = 1 to !next_fid - 1 do
    match Vswitch.decision_of vs ~fid with
    | None -> consistent := false
    | Some Vswitch.Granted ->
      incr n_granted;
      if not (Hashtbl.mem resident fid) then consistent := false
    | Some (Vswitch.Queued | Vswitch.Evicted | Vswitch.Denied _ | Vswitch.Departed)
      ->
      if Hashtbl.mem resident fid then consistent := false
  done;
  if !n_granted <> Hashtbl.length resident then consistent := false;
  List.iter
    (fun fid -> if Hashtbl.mem resident fid then consistent := false)
    (Vswitch.parked vs);
  {
    config;
    capacity_blocks = capacity;
    effective_capacity_blocks = effective_capacity;
    per_tenant;
    jain_wb;
    min_retained_wb = (if wb = [] then 1.0 else min_retained_wb);
    granted = Telemetry.counter_value telemetry "tenant.granted";
    denied_quota = Telemetry.counter_value telemetry "tenant.denied.quota";
    denied_capacity = Telemetry.counter_value telemetry "tenant.denied.capacity";
    evictions = Telemetry.counter_value telemetry "tenant.evictions";
    relocations = Telemetry.counter_value telemetry "tenant.relocations";
    deferrals = Telemetry.counter_value telemetry "tenant.deferrals";
    epochs;
    p50_admit_s = pct 50.0;
    p99_admit_s = pct 99.0;
    modeled_span_s = Vswitch.modeled_clock vs;
    consistent = !consistent;
    admit_wall_s = !admit_wall;
  }

(* Deterministic one-line-per-fact summary: everything printed derives
   from the modeled clock and the seeded scenario, so two runs with the
   same config are byte-identical (the CI replay gate). *)
let summary_lines r =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "tenants=%d capacity_blocks=%d effective_capacity_blocks=%d demand_blocks=%d services_per_tenant=%d hostile_factor=%d seed=%d"
    r.config.tenants r.capacity_blocks r.effective_capacity_blocks
    r.config.demand_blocks r.config.services_per_tenant r.config.hostile_factor
    r.config.seed;
  line "epochs=%d granted=%d denied_quota=%d denied_capacity=%d evictions=%d relocations=%d deferrals=%d"
    r.epochs r.granted r.denied_quota r.denied_capacity r.evictions
    r.relocations r.deferrals;
  line "jain_wb=%.4f min_retained_wb=%.4f p50_admit_ms=%.4f p99_admit_ms=%.4f modeled_span_s=%.6f consistent=%b"
    r.jain_wb r.min_retained_wb (1000.0 *. r.p50_admit_s)
    (1000.0 *. r.p99_admit_s) r.modeled_span_s r.consistent;
  List.iter
    (fun o ->
      line "tenant=%d%s weight=%d offered=%d granted=%d fair=%.1f retained=%.4f"
        o.tenant
        (if o.hostile then "(hostile)" else "")
        o.weight o.offered_blocks o.granted_blocks o.fair_blocks o.retained)
    r.per_tenant;
  Buffer.contents b
