(** Beyond-paper fleet experiment: how many concurrently admitted
    services a multi-switch fleet sustains as the offered load grows,
    swept over switch count x arrival count and placement policy. *)

val run :
  ?switch_counts:int list ->
  ?arrival_counts:int list ->
  ?seed:int ->
  Rmt.Params.t ->
  unit
(** Defaults: switch counts [1; 2; 4; 8], arrival counts [50; 150; 300],
    seed 4242.  Every cell replays the same seeded mixed workload into a
    fresh full-mesh fleet under least-loaded placement and reports
    admitted/rejected/spill-over counts and final mean occupancy. *)
