(** The planet-scale fleet scenario (ROADMAP item 4): a fat-tree fleet
    admits a large concurrent service population through the batched
    epoch pipeline under hierarchical placement, a link flap exercises
    the incremental router's bounded repair, and a rolling pod failure
    re-places every resident with zero FID loss.

    The full configuration is the headline 1024-switch run (k=32, 24
    pods, 100k services); [quick_config] is the 64-switch CI drill
    (k=8, 6 pods).  Both close exactly on their switch count:
    [pods*k + (k/2)^2]. *)

val scenario_params : Rmt.Params.t
(** [Rmt.Params.default] with 2048 words per stage: same 256-block
    allocation granularity, ~328 KB modeled register memory per switch
    so 1024 devices fit in RAM. *)

type config = {
  k : int;  (** fat-tree arity (even) *)
  pods : int;  (** pods built out (partial fabric allowed) *)
  services : int;  (** concurrent services offered *)
  batch : int;  (** services enqueued per admission drain *)
  seed : int;
  fail_pod : int option;  (** rolling failure: every switch of this pod *)
  params : Rmt.Params.t;
}

val default_config : config
(** 1024 switches, 100k services, rolling failure of pod 0. *)

val quick_config : config
(** 64 switches, 3k services — the CI smoke variant. *)

type result = {
  switches : int;
  links : int;
  n_pods : int;
  offered : int;
  admitted : int;
  rejected : int;
  concurrent : int;
  spillover : int;
  adm_epochs : int;
  occupancy : float;
  place_us : float list;
      (** per-service placement+admission cost samples, one per batch
          (wall-clock derived — excluded from deterministic summaries) *)
  sssp_runs : int;
  routed_pairs : int;
  flap_down_touched : int;
  flap_up_touched : int;
  flap_frac : float;  (** worst single-transition touched/routed fraction *)
  flap_repairs : int;
  failed_switches : int;
  relocated : int;
  lost : int;
  orphans : int;  (** residents left on a down switch — must be 0 *)
}

val arrivals : n:int -> seed:int -> (int * Workload.Churn.kind) list
(** The scenario's seeded service mix: mostly light services with
    1-in-16 heavy hitters, as (fid, kind) ascending fid.  Shared with
    the health plane's [healthcheck] scenario so both drills admit the
    same population. *)

val run_scenario : ?log:(string -> unit) -> config -> result
(** Execute the scenario: batched admission (one placement-cost sample
    per batch), a down+up flap of pod 0's first edge uplink against
    fully built route tables, then the rolling pod failure. *)

val run : ?quick:bool -> unit -> unit
(** Textual report wrapper around {!run_scenario} for the evaluation
    harness. *)
