open Import

let run ?(epochs = 300) ?(trials = 5) params =
  Report.figure ~id:"Extended E1"
    ~title:"online churn over five service types (per-kind admission, utilization)";
  let kinds = Array.to_list Churn.extended_kinds in
  let admitted = Hashtbl.create 8 in
  let offered = Hashtbl.create 8 in
  let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  let finals = ref [] in
  for trial = 1 to trials do
    let rng = Prng.create ~seed:(21_000 + trial) in
    let trace = Churn.generate Churn.extended_config ~epochs rng in
    let alloc = Allocator.create params in
    let block_bytes = Rmt.Params.bytes_per_block params in
    List.iter
      (fun (e : Churn.epoch) ->
        List.iter
          (fun ev ->
            match ev with
            | Churn.Depart { fid } -> ignore (Allocator.depart alloc ~fid)
            | Churn.Arrive { fid; kind; _ } -> (
              bump offered kind;
              match Allocator.admit alloc (Harness.arrival_of ~fid kind ~block_bytes) with
              | Allocator.Admitted _ -> bump admitted kind
              | Allocator.Rejected _ -> ()))
          e.Churn.events)
      trace;
    finals := Allocator.utilization alloc :: !finals
  done;
  Report.columns [ "kind"; "offered"; "admitted"; "admission_rate" ];
  List.iter
    (fun kind ->
      let o = Option.value ~default:0 (Hashtbl.find_opt offered kind) in
      let a = Option.value ~default:0 (Hashtbl.find_opt admitted kind) in
      Report.row
        [
          Churn.kind_to_string kind;
          Report.int_cell o;
          Report.int_cell a;
          Report.float_cell (float_of_int a /. float_of_int (max 1 o));
        ])
    kinds;
  Report.summary
    [
      ( "final utilization (mean over trials)",
        Report.float_cell (Stats.mean !finals) );
      ("epochs x trials", Printf.sprintf "%d x %d" epochs trials);
    ]
