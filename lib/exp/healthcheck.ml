open Import
module Slo = Activermt_health.Slo
module Monitor = Activermt_health.Monitor

type config = {
  seed : int;
  fleet_k : int;
  fleet_pods : int;
  fleet_services : int;
  fleet_batch : int;
  fail_switches : int;
  chaos_services : int;
  tenants : int;
  inject_flap_storm : bool;
  storm_flaps : int;
}

let quick_config =
  {
    seed = 9001;
    fleet_k = 8;
    fleet_pods = 6;
    fleet_services = 1500;
    fleet_batch = 256;
    fail_switches = 2;
    chaos_services = 16;
    tenants = 8;
    inject_flap_storm = false;
    storm_flaps = 16;
  }

let default_config =
  { quick_config with fleet_services = 5000; fleet_batch = 512 }

(* Thresholds sit a comfortable margin above the healthy quick-config
   numbers (flap locality ~3.5%, a ~240-eviction designed reclamation
   burst, ~5 s modeled admission p99 dominated by eviction drains) so a
   clean run never pages while genuine regressions still trip. *)
let standing_slos _cfg =
  [
    Slo.ratio ~name:"fleet.admission"
      ~description:"fleet admits >= 95% of offered services" ~window:64
      ~good:"fleet.admitted" ~total:"fleet.offered" ~target:0.95 ();
    Slo.ratio ~name:"chaos.completion"
      ~description:"chaos services complete memsync >= 95%" ~window:160
      ~good:"chaos.completed" ~total:"chaos.services" ~target:0.95 ();
    Slo.quantile ~name:"tenant.admit_p99"
      ~description:"tenant admission p99 latency (modeled)" ~window:64
      ~series:"tenant.admit_latency_s" ~q:0.99 ~bound:8.0 ();
    Slo.stat ~name:"tenant.fairness"
      ~description:"Jain index over well-behaved tenants >= 0.9" ~window:64
      ~series:"tenant.jain" ~stat:Slo.Min ~cmp:`Ge ~bound:0.9 ();
    Slo.stat ~name:"route.locality"
      ~description:"route repair touches <= 5% of routed pairs" ~window:64
      ~series:"route.flap_frac" ~stat:Slo.Max ~cmp:`Le ~bound:0.05 ();
  ]

let watchdogs =
  [
    {
      Monitor.wd_name = "route.locality_storm";
      wd_description = "link flap storm: > 4 flaps inside 10 windows";
      wd_window = 10;
      wd_trigger = Monitor.Event_count { event = "topology.flap"; max = 4 };
      wd_severity = Slo.Page;
    };
    {
      Monitor.wd_name = "tenant.preemption_cascade";
      wd_description = "preemptive reclamation evicting far beyond the burst";
      wd_window = 20;
      wd_trigger = Monitor.Series_sum { series = "tenant.evictions"; max = 512.0 };
      wd_severity = Slo.Warn;
    };
    {
      Monitor.wd_name = "fleet.rejection_spike";
      wd_description = "fleet-wide admission rejections spiking";
      wd_window = 20;
      wd_trigger = Monitor.Series_sum { series = "fleet.rejected"; max = 256.0 };
      wd_severity = Slo.Warn;
    };
    {
      Monitor.wd_name = "fleet.jit_churn";
      wd_description = "JIT invalidation churn (mass migration thrash)";
      wd_window = 20;
      wd_trigger =
        Monitor.Series_sum { series = "fleet.jit.invalidations"; max = 512.0 };
      wd_severity = Slo.Warn;
    };
  ]

type result = {
  evaluations : Slo.evaluation list;
  incidents : Monitor.incident list;
  healthy : bool;
  monitor : Monitor.t;
  report : Json.t;
}

let run ?(log = ignore) cfg =
  (* One virtual clock drives every fleet-phase series bucket: it ticks
     one bucket per admission drain round / drill step.  Chaos and
     tenants record through their own modeled clocks (explicit [~t]), so
     nothing here ever reads wall time. *)
  let vclock = ref 0.0 in
  let series =
    Timeseries.create ~bucket_s:1.0 ~capacity:256 ~now:(fun () -> !vclock) ()
  in
  let mon = Monitor.create ~series () in
  List.iter (Monitor.add_watchdog mon) watchdogs;
  let tracer = Trace.create ~sample:1.0 ~seed:cfg.seed () in
  (* Phase A: mini fleetscale — fat-tree admission, link-flap drill
     (plus the optional injected storm) and a small failure drill. *)
  let topo = Topology.fat_tree ~pods:cfg.fleet_pods ~k:cfg.fleet_k () in
  let fleet =
    Fleet.create ~policy:Placement.Hierarchical
      ~params:Fleet_scale.scenario_params ~telemetry:(Telemetry.create ())
      ~series ~tracer topo
  in
  log
    (Printf.sprintf "healthcheck: fat-tree k=%d pods=%d (%d switches), %d services"
       cfg.fleet_k cfg.fleet_pods (Topology.switches topo) cfg.fleet_services);
  let rec admit_chunks todo =
    match todo with
    | [] -> ()
    | _ ->
      let chunk, rest =
        let rec split i acc = function
          | x :: tl when i < cfg.fleet_batch -> split (i + 1) (x :: acc) tl
          | tl -> (List.rev acc, tl)
        in
        split 0 [] todo
      in
      List.iter
        (fun (fid, kind) ->
          Fleet.enqueue_admission fleet ~fid (Harness.app_of_kind kind))
        chunk;
      Timeseries.add series ~by:(float_of_int (List.length chunk)) "fleet.offered";
      ignore (Fleet.drain_admissions fleet);
      vclock := !vclock +. 1.0;
      Monitor.check ~at:!vclock mon;
      admit_chunks rest
  in
  admit_chunks (Fleet_scale.arrivals ~n:cfg.fleet_services ~seed:cfg.seed);
  (* Link-flap drill against fully built routes: each transition is one
     [topology.flap] event carrying the flight-recorder trace that
     observed it, plus a [route.flap_frac] locality sample. *)
  Topology.build_all_routes topo;
  let routed = Topology.routed_pairs topo in
  let edge0 = 0 and agg0 = cfg.fleet_k / 2 in
  let flap ~up =
    let s0 = (Topology.stats topo).Topology.pairs_touched in
    ignore (Topology.set_link topo ~a:edge0 ~b:agg0 ~up);
    let touched = (Topology.stats topo).Topology.pairs_touched - s0 in
    let frac = float_of_int touched /. float_of_int (max 1 routed) in
    Timeseries.observe series ~t:!vclock "route.flap_frac" frac;
    let trace_id =
      match
        Trace.start_trace tracer
          ~attrs:
            [
              ("link", Printf.sprintf "%d-%d" edge0 agg0);
              ("up", string_of_bool up);
              ("touched", string_of_int touched);
            ]
          "topology.flap"
      with
      | Some ctx -> Some ctx.Trace.trace_id
      | None -> None
    in
    Monitor.event mon ~t:!vclock ?trace_id "topology.flap";
    frac
  in
  let f_down = flap ~up:false in
  vclock := !vclock +. 1.0;
  let f_up = flap ~up:true in
  Monitor.check ~at:!vclock mon;
  log
    (Printf.sprintf "flap drill: %.4f%% down / %.4f%% up of %d routed pairs"
       (100.0 *. f_down) (100.0 *. f_up) routed);
  if cfg.inject_flap_storm then begin
    (* Breach injection: hammer the same uplink inside one window so the
       flap count blows through the storm watchdog. *)
    vclock := !vclock +. 1.0;
    for i = 1 to cfg.storm_flaps do
      ignore (flap ~up:(i mod 2 = 0))
    done;
    Monitor.check ~at:!vclock mon;
    log (Printf.sprintf "injected flap storm: %d transitions" cfg.storm_flaps)
  end;
  (* Failure drill: a couple of pod-1 switches go down one window apart;
     relocations exercise migration (and its JIT invalidations). *)
  let victims =
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    take cfg.fail_switches (Topology.pod_members topo ~pod:1)
  in
  List.iter
    (fun sw ->
      vclock := !vclock +. 1.0;
      ignore (Fleet.fail_switch fleet ~sw);
      Monitor.check ~at:!vclock mon)
    victims;
  (* Phase B: the chaos protocol stack under 1% loss; completion feeds
     the chaos.completion SLO through the engine's simulated clock. *)
  let chaos_cfg =
    {
      Chaos.default_config with
      Chaos.services = cfg.chaos_services;
      seed = cfg.seed;
    }
  in
  let chaos = Chaos.run ~series chaos_cfg in
  log
    (Printf.sprintf "chaos: %d/%d completed (%.1f%%)" chaos.Chaos.completed
       cfg.chaos_services
       (100.0 *. chaos.Chaos.completion));
  (* Phase C: noisy-neighbor tenancy; admission latency, evictions and
     the Jain index land on the vswitch's modeled clock. *)
  let tenants_cfg =
    { (Tenants.preset ~tenants:cfg.tenants ()) with Tenants.seed = cfg.seed }
  in
  let tn = Tenants.run ~series tenants_cfg in
  log
    (Printf.sprintf "tenants: jain %.3f, admit p99 %.3f s (modeled), %d evictions"
       tn.Tenants.jain_wb tn.Tenants.p99_admit_s tn.Tenants.evictions);
  (* Final verdict at the last fleet-phase instant. *)
  let slos = standing_slos cfg in
  let evaluations = Monitor.evaluate ~at:!vclock mon slos in
  let incidents = Monitor.incidents mon in
  let healthy = Monitor.healthy mon in
  let config_json =
    Json.Obj
      [
        ("seed", Json.Num (float_of_int cfg.seed));
        ("fleet_k", Json.Num (float_of_int cfg.fleet_k));
        ("fleet_pods", Json.Num (float_of_int cfg.fleet_pods));
        ("fleet_services", Json.Num (float_of_int cfg.fleet_services));
        ("fleet_batch", Json.Num (float_of_int cfg.fleet_batch));
        ("fail_switches", Json.Num (float_of_int cfg.fail_switches));
        ("chaos_services", Json.Num (float_of_int cfg.chaos_services));
        ("tenants", Json.Num (float_of_int cfg.tenants));
        ("inject_flap_storm", Json.Bool cfg.inject_flap_storm);
        ("storm_flaps", Json.Num (float_of_int cfg.storm_flaps));
      ]
  in
  let scenario_json =
    Json.Obj
      [
        ("fleet_residents", Json.Num (float_of_int (List.length (Fleet.residents fleet))));
        ("routed_pairs", Json.Num (float_of_int routed));
        ("flap_frac", Json.Num (Float.max f_down f_up));
        ("chaos_completed", Json.Num (float_of_int chaos.Chaos.completed));
        ("chaos_completion", Json.Num chaos.Chaos.completion);
        ("tenant_jain", Json.Num tn.Tenants.jain_wb);
        ("tenant_p99_admit_s", Json.Num tn.Tenants.p99_admit_s);
        ("tenant_evictions", Json.Num (float_of_int tn.Tenants.evictions));
      ]
  in
  let report =
    match Monitor.json_report ~slos:evaluations mon with
    | Json.Obj fields ->
      Json.Obj (("config", config_json) :: ("scenario", scenario_json) :: fields)
    | other -> other
  in
  { evaluations; incidents; healthy; monitor = mon; report }

let summary_lines r =
  let slo_line (ev : Slo.evaluation) =
    Printf.sprintf "SLO %-18s %-4s measured=%.6g threshold=%.6g burn=%.3g/%.3g"
      ev.Slo.ev_slo.Slo.slo_name
      (Slo.status_name ev.Slo.ev_status)
      ev.Slo.ev_measured
      (Slo.threshold_of ev.Slo.ev_slo)
      ev.Slo.ev_burn_slow ev.Slo.ev_burn_fast
  in
  let incident_line (i : Monitor.incident) =
    Printf.sprintf "INCIDENT #%d at t=%.0f %s [%s] measured=%.6g threshold=%.6g traces=[%s]"
      i.Monitor.i_seq i.Monitor.i_at i.Monitor.i_source
      (Slo.status_name i.Monitor.i_severity)
      i.Monitor.i_measured i.Monitor.i_threshold
      (String.concat ","
         (List.map string_of_int i.Monitor.i_trace_ids))
  in
  List.map slo_line r.evaluations
  @ List.map incident_line r.incidents
  @ [
      Printf.sprintf "VERDICT %s (%d pages, %d warns, %d incidents)"
        (if r.healthy then "healthy" else "unhealthy")
        (Monitor.page_count r.monitor)
        (Monitor.warn_count r.monitor)
        (List.length r.incidents);
    ]
