(** Chaos scenario: the full allocation + memsync protocol stack under a
    seeded fault profile ({!Netsim.Faults}).

    A population of services negotiates allocations through a faulty
    fabric, then bulk-writes its state with memsync capsules over the
    same faulty links.  With [retries] on, every layer's recovery
    machinery runs — negotiation backoff ({!Activermt_client.Negotiate}
    sessions), memsync retransmission with exponential backoff and a
    bounded attempt budget, and control-plane fallback for indices the
    data plane never delivered.  With [retries] off each packet is sent
    exactly once, documenting the baseline failure rate the recovery
    paths exist to fix.

    The service mix is inelastic (flow counter / load balancer / heavy
    hitter) so placements never move mid-run and completion measures
    fault recovery alone.  Everything is driven by one seeded PRNG per
    fault model: same config, same result, bit for bit. *)

type config = {
  services : int;  (** concurrent service clients (default 16) *)
  words : int;  (** state words each service writes (default 48) *)
  seed : int;  (** drives the fault model and all jitter *)
  retries : bool;  (** false = fire-once baseline *)
  profile : Netsim.Faults.profile;
  horizon_s : float;  (** simulated-time cap; the run never hangs *)
  jit : bool;  (** run capsules through the switch's JIT tier (default) *)
}

val default_config : config
(** 16 services, 48 words, retries on, 1% drop, 120 s horizon. *)

type outcome =
  | Synced  (** all words written via the data plane and verified *)
  | Fallback  (** completed, but some words needed the control plane *)
  | Rejected  (** the switch refused the allocation *)
  | Timeout  (** negotiation retry budget exhausted *)
  | Incomplete  (** state missing or unverified at the horizon *)

val outcome_to_string : outcome -> string

type result = {
  outcomes : (int * outcome) list;  (** per service, ascending fid *)
  completed : int;  (** services whose memory verified end-to-end *)
  completion : float;  (** completed / services *)
  negotiation_attempts : int;
  negotiation_retries : int;  (** attempts beyond the first per service *)
  sync_packets : int;
  sync_retransmits : int;
  fallback_words : int;  (** words written over the control plane *)
  fault_events : int;  (** faults the model injected, all kinds *)
  sim_time_s : float;
  faults : Netsim.Faults.t;  (** for dumping the event trace *)
}

val run :
  ?telemetry:Activermt_telemetry.Telemetry.t ->
  ?series:Activermt_telemetry.Timeseries.t ->
  ?tracer:Activermt_telemetry.Trace.t ->
  config ->
  result
(** Also sets the [chaos.completion] gauge and [chaos.fallback_words] /
    [chaos.negotiation_timeouts] counters on [telemetry].

    [tracer] (default [Trace.noop]) records causal traces: each service's
    [negotiate.session] and [memsync.sync] roots, with every capsule's
    fabric hops, fault verdicts and controller provisioning chained
    underneath (the tracer's clock is wired to the engine, so trace time
    is simulated time).
    @raise Invalid_argument on non-positive sizes. *)
