open Import

let run_8a ?(epochs = 300) ?(every = 10) params =
  Report.figure ~id:"Figure 8a"
    ~title:"provisioning time per arrival (allocation + table update + snapshot)";
  let device = Rmt.Device.create params in
  let controller = Controller.create ~mode:`Auto device in
  let rng = Prng.create ~seed:4242 in
  let trace = Churn.generate Churn.default_config ~epochs rng in
  let rows = ref [] in
  let arrival_idx = ref 0 in
  List.iter
    (fun (e : Churn.epoch) ->
      List.iter
        (fun ev ->
          match ev with
          | Churn.Depart { fid } -> ignore (Controller.handle_departure controller ~fid)
          | Churn.Arrive { fid; kind; _ } ->
            let app = Harness.app_of_kind kind in
            let pkt = Activermt_client.Negotiate.request_packet ~fid ~seq:0 app in
            (match Controller.handle_request controller pkt with
            | Ok prov ->
              let b = prov.Controller.timing in
              incr arrival_idx;
              rows :=
                ( !arrival_idx,
                  [
                    Report.float_cell b.Cost_model.allocation_s;
                    Report.float_cell b.Cost_model.table_update_s;
                    Report.float_cell b.Cost_model.snapshot_s;
                    Report.float_cell (Cost_model.total b);
                  ] )
                :: !rows
            | Error (`Rejected _) | Error (`Bad_packet _) -> ()))
        e.Churn.events)
    trace;
  let rows = List.rev !rows in
  Report.series ~every
    ~columns:[ "arrival"; "alloc_s"; "table_s"; "snapshot_s"; "total_s" ]
    rows;
  let totals =
    List.map (fun (_, cells) -> float_of_string (List.nth cells 3)) rows
  in
  let tail = List.filteri (fun i _ -> i >= List.length totals - 50) totals in
  Report.summary
    [
      ("plateau provisioning time (last 50 arrivals, s)", Report.float_cell (Stats.mean tail));
      ("p4 compile of 22-instance monolith (s)", Report.float_cell Cost_model.p4_compile_s);
      ( "speedup vs p4 compile",
        Report.float_cell (Cost_model.p4_compile_s /. Float.max 1e-9 (Stats.mean tail)) );
    ]

let nop_chain n =
  if n < 2 then invalid_arg "nop_chain: need at least RTS and RETURN";
  Activermt.Program.v ~name:(Printf.sprintf "nops-%d" n)
    (Activermt.Program.plain
       ((Activermt.Instr.Rts :: List.init (n - 2) (fun _ -> Activermt.Instr.Nop))
       @ [ Activermt.Instr.Return ]))

let run_8b ?(packets = 1000) params =
  Report.figure ~id:"Figure 8b"
    ~title:"processing latency vs. program length (client-to-switch RTT, us)";
  let device = Rmt.Device.create params in
  let controller = Controller.create device in
  let fid = 9001 in
  let app =
    {
      App.name = "nop-chain";
      programs = [ Spec.analyze (nop_chain 10) ];
      elastic = false;
      demand_blocks = [||];
    }
  in
  let pkt = Activermt_client.Negotiate.request_packet ~fid ~seq:0 app in
  (match Controller.handle_request controller pkt with
  | Ok _ -> ()
  | Error _ -> failwith "fig8b: nop-chain admission failed");
  let tables = Controller.tables controller in
  let rng = Prng.create ~seed:88 in
  let meta = Activermt.Runtime.meta ~src:1 ~dst:2 () in
  let measure label rtt_of =
    let samples =
      List.init packets (fun _ ->
          (* End-host jitter around the modeled RTT. *)
          rtt_of () +. Prng.float rng 0.12)
    in
    let s = Stats.summarize samples in
    Report.row
      [
        label;
        Report.float_cell s.Stats.mean;
        Report.float_cell (Stats.percentile samples 50.0);
        Report.float_cell (Stats.percentile samples 99.0);
      ]
  in
  Report.columns [ "program"; "mean_us"; "p50_us"; "p99_us" ];
  measure "echo" (fun () -> params.Rmt.Params.wire_rtt_us);
  List.iter
    (fun n ->
      let program = nop_chain n in
      let p = Activermt.Packet.exec ~fid ~seq:0 ~args:[||] program in
      measure
        (Printf.sprintf "%d instructions" n)
        (fun () ->
          let r = Activermt.Runtime.run tables ~meta p in
          Activermt.Runtime.latency_us params r))
    [ 10; 20; 30 ];
  Report.summary
    [
      ( "added latency per pipeline (us)",
        Report.float_cell params.Rmt.Params.pass_latency_us );
    ]
