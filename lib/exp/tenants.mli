open Import

(** The noisy-neighbor scenario: multi-tenant admission under one
    hostile tenant's flood.

    [tenants] equal-weight tenants share one virtual switch
    ({!Vswitch}).  Tenant 0 — the noisy neighbor — floods the empty
    switch with [hostile_factor] times its weighted fair share of
    admission requests and, unopposed, captures most of the device.
    Then every well-behaved tenant offers (at most) its own fair share.
    The scenario passes when WRR scheduling plus preemptive reclamation
    claw the hostile surplus back: each well-behaved tenant must end up
    holding its entitlement (the gate in [bench tenants] requires
    [min_retained_wb >= 0.9] and Jain's index over the well-behaved
    [>= 0.9]).

    Everything that feeds the gates is deterministic: admission runs on
    the vswitch's modeled clock, the only randomness is the seeded
    submission shuffle, and the per-service demand is inelastic, so a
    tenant's charged blocks equal its allocator footprint exactly. *)

type config = {
  tenants : int;  (** total, including the hostile tenant 0; >= 2 *)
  hostile_factor : int;
      (** hostile offered load as a multiple of its fair share *)
  demand_blocks : int;  (** per-service inelastic block demand *)
  services_per_tenant : int;  (** well-behaved offered services *)
  max_batch : int;  (** vswitch admission epoch size *)
  seed : int;  (** phase-2 submission shuffle *)
}

val scenario_params : Rmt.Params.t
(** {!Rmt.Params.default} with 16-word blocks ([words_per_stage] 4096)
    so evicting a service drains a few dozen memsync words, not
    thousands. *)

val capacity_of : Rmt.Params.t -> int
(** Total pool blocks: [logical_stages * blocks_per_stage]. *)

val preset : ?params:Rmt.Params.t -> tenants:int -> unit -> config
(** A saturating configuration for [tenants] equal tenants: per-service
    demand scaled so each well-behaved tenant offers its whole fair
    share in a handful of services (total well-behaved demand ~= the
    device), hostile factor 10, 64-request epochs, seed 7. *)

type tenant_outcome = {
  tenant : int;
  weight : int;
  hostile : bool;
  offered_blocks : int;
  granted_blocks : int;  (** charged (guaranteed) blocks held at end *)
  fair_blocks : float;  (** weighted fair share of the device *)
  retained : float;
      (** [granted / min(offered, fair)] — the share-retention ratio the
          fairness gates run on (1.0 when the tenant could not have
          wanted more) *)
}

type result = {
  config : config;
  capacity_blocks : int;  (** raw pool size *)
  effective_capacity_blocks : int;
      (** achievable capacity for the service class, probed by filling a
          scratch allocator: program shape limits which stages the
          memory access can occupy, so this is below [capacity_blocks].
          Entitlements, [fair_blocks] and the retention gates all use
          it. *)
  per_tenant : tenant_outcome list;  (** ascending tenant id *)
  jain_wb : float;
      (** Jain's fairness index over well-behaved retention ratios *)
  min_retained_wb : float;
  granted : int;
  denied_quota : int;
  denied_capacity : int;
  evictions : int;
  relocations : int;  (** evictees re-admitted with state repopulated *)
  deferrals : int;
  epochs : int;
  p50_admit_s : float;  (** modeled submit-to-grant latency percentiles *)
  p99_admit_s : float;
  modeled_span_s : float;  (** vswitch modeled clock at scenario end *)
  consistent : bool;
      (** zero-FID-loss audit: allocator residents, Granted decisions
          and the parked set tile the submitted FIDs with no overlap *)
  admit_wall_s : float;  (** measured wall time of both drains *)
}

val run :
  ?params:Rmt.Params.t ->
  ?telemetry:Telemetry.t ->
  ?series:Timeseries.t ->
  ?tracer:Trace.t ->
  ?clock:(unit -> float) ->
  config ->
  result
(** Run the two-phase scenario.  [params] defaults to
    {!scenario_params}; [telemetry] defaults to a {e fresh} registry so
    counters are scenario-local; [clock] (default [Sys.time]) only feeds
    [admit_wall_s]. *)

val summary_lines : result -> string
(** Deterministic multi-line summary (modeled quantities only — no wall
    times), byte-identical across same-config runs; the CI determinism
    replay compares two of these. *)
