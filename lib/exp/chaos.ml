open Import
module Engine = Netsim.Engine
module Fabric = Netsim.Fabric
module Faults = Netsim.Faults
module Negotiate = Activermt_client.Negotiate
module Memsync_driver = Activermt_client.Memsync_driver

type config = {
  services : int;
  words : int;
  seed : int;
  retries : bool;
  profile : Faults.profile;
  horizon_s : float;
  jit : bool;
}

let default_config =
  {
    services = 16;
    words = 48;
    seed = 0xC4A05;
    retries = true;
    profile = Faults.lossy ~drop:0.01 ();
    horizon_s = 120.0;
    jit = true;
  }

type outcome = Synced | Fallback | Rejected | Timeout | Incomplete

let outcome_to_string = function
  | Synced -> "synced"
  | Fallback -> "fallback"
  | Rejected -> "rejected"
  | Timeout -> "timeout"
  | Incomplete -> "incomplete"

type result = {
  outcomes : (int * outcome) list;
  completed : int;
  completion : float;
  negotiation_attempts : int;
  negotiation_retries : int;
  sync_packets : int;
  sync_retransmits : int;
  fallback_words : int;
  fault_events : int;
  sim_time_s : float;
  faults : Faults.t;
}

(* Per-service protocol state, driven entirely by simulation events. *)
type state =
  | Negotiating
  | Syncing
  | St_synced
  | St_fell_back
  | St_rejected
  | St_timed_out

type service = {
  fid : int;
  addr : Fabric.address;
  session : Negotiate.session;
  mutable state : state;
  mutable stage : int;
  mutable driver : Memsync_driver.t option;
}

(* The inelastic service mix: placements never move once granted, so a
   chaos run isolates fault recovery from elastic reallocation. *)
let kind_of i =
  match i mod 3 with
  | 0 -> Churn.Flow_counter
  | 1 -> Churn.Load_balancer
  | _ -> Churn.Heavy_hitter

let expected_word ~fid index = (fid * 1000) + index

let run ?(telemetry = Telemetry.default) ?(series = Timeseries.noop)
    ?(tracer = Trace.noop) cfg =
  if cfg.services <= 0 then invalid_arg "Chaos.run: services must be positive";
  if cfg.words <= 0 then invalid_arg "Chaos.run: words must be positive";
  if cfg.horizon_s <= 0.0 then invalid_arg "Chaos.run: horizon must be positive";
  let engine = Engine.create ~telemetry () in
  if Trace.enabled tracer then Trace.set_clock tracer (fun () -> Engine.now engine);
  let controller =
    let device = Rmt.Device.create Rmt.Params.default in
    let cost =
      if cfg.profile.Faults.table_update_slowdown > 1.0 then
        Some
          (Cost_model.degrade Cost_model.default
             ~slowdown:cfg.profile.Faults.table_update_slowdown)
      else None
    in
    Controller.create ?cost ~mode:`Auto ~telemetry ~series ~tracer device
  in
  let faults = Faults.create ~seed:cfg.seed ~telemetry cfg.profile in
  let fabric = Fabric.create ~faults ~jit:cfg.jit ~telemetry ~tracer ~engine ~controller () in
  let sink = 200 in
  Fabric.attach fabric sink (fun _ -> ());
  let backoff =
    if cfg.retries then Negotiate.default_backoff else Negotiate.no_retry
  in
  let fallback_words = ref 0 in
  (* Capsules carry their protocol session's trace context, so fabric
     hops and fault verdicts chain under the [negotiate.session] /
     [memsync.sync] roots; [inject] head-samples any capsule that does
     not already belong to a trace. *)
  let nego_send svc pkt =
    Fabric.inject fabric
      {
        Fabric.src = svc.addr;
        dst = Fabric.switch_address;
        payload = Fabric.Active pkt;
        trace = Negotiate.trace svc.session;
      }
  in
  let sync_send svc ~seq:_ pkt =
    Fabric.inject fabric
      {
        Fabric.src = svc.addr;
        dst = sink;
        payload = Fabric.Active pkt;
        trace = Option.bind svc.driver Memsync_driver.trace;
      }
  in
  let fall_back svc driver =
    let survivors = Memsync_driver.unacked driver in
    List.iter
      (fun index ->
        ignore
          (Controller.write_region_word controller ~fid:svc.fid ~stage:svc.stage
             ~index ~value:(expected_word ~fid:svc.fid index)))
      survivors;
    fallback_words := !fallback_words + List.length survivors;
    Telemetry.incr telemetry "chaos.fallback_words"
      ~by:(List.length survivors);
    svc.state <- St_fell_back;
    Timeseries.add series ~t:(Engine.now engine) "chaos.completed";
    Timeseries.add series ~t:(Engine.now engine) "chaos.fallbacks"
  in
  let rec pump_sync svc () =
    match (svc.state, svc.driver) with
    | Syncing, Some driver ->
      if Memsync_driver.is_done driver then begin
        svc.state <- St_synced;
        Timeseries.add series ~t:(Engine.now engine) "chaos.completed"
      end
      else if
        Memsync_driver.exhausted driver = Memsync_driver.outstanding driver
      then
        (* Nothing left that the driver may retransmit. *)
        if cfg.retries then fall_back svc driver else svc.state <- St_timed_out
      else begin
        ignore
          (Memsync_driver.tick driver ~now:(Engine.now engine)
             ~send:(sync_send svc));
        Engine.schedule engine ~delay:0.02 (pump_sync svc)
      end
    | _ -> ()
  in
  let on_granted svc regions =
    if svc.state = Negotiating then begin
      let stage = ref (-1) in
      Array.iteri
        (fun s r -> if !stage < 0 && r <> None then stage := s)
        regions;
      if !stage < 0 then svc.state <- St_rejected
      else begin
        svc.stage <- !stage;
        let driver =
          if cfg.retries then
            Memsync_driver.create ~multiplier:2.0 ~max_timeout_s:0.32
              ~jitter:0.1 ~max_attempts:16
              ~seed:(cfg.seed lxor 0x5ca1ab1e) ~tracer ~fid:svc.fid
              ~stages:[ !stage ] ~count:cfg.words ~timeout_s:0.02
              (Memsync_driver.Write
                 (fun index -> [ expected_word ~fid:svc.fid index ]))
          else
            Memsync_driver.create ~max_attempts:1 ~tracer ~fid:svc.fid
              ~stages:[ !stage ] ~count:cfg.words ~timeout_s:0.02
              (Memsync_driver.Write
                 (fun index -> [ expected_word ~fid:svc.fid index ]))
        in
        svc.driver <- Some driver;
        svc.state <- Syncing;
        Memsync_driver.start driver ~now:(Engine.now engine)
          ~send:(sync_send svc);
        Engine.schedule engine ~delay:0.02 (pump_sync svc)
      end
    end
  in
  let rec pump_nego svc () =
    if svc.state = Negotiating then
      match
        Negotiate.tick svc.session ~now:(Engine.now engine)
          ~send:(nego_send svc)
      with
      | `Wait dt -> Engine.schedule engine ~delay:dt (pump_nego svc)
      | `Done (Negotiate.Granted regions) -> on_granted svc regions
      | `Done Negotiate.Rejected -> svc.state <- St_rejected
      | `Done Negotiate.Timeout ->
        svc.state <- St_timed_out;
        Telemetry.incr telemetry "chaos.negotiation_timeouts"
  in
  let services =
    Array.init cfg.services (fun i ->
        let fid = i + 1 in
        {
          fid;
          addr = 100 + fid;
          session =
            Negotiate.session ~backoff ~seed:cfg.seed ~tracer ~fid
              (Harness.app_of_kind (kind_of i));
          state = Negotiating;
          stage = -1;
          driver = None;
        })
  in
  Array.iter
    (fun svc ->
      Fabric.attach fabric svc.addr (fun msg ->
          match msg.Fabric.payload with
          | Fabric.Active
              ({ Activermt.Packet.payload = Activermt.Packet.Response _; _ } as
               pkt) -> (
            match Negotiate.on_packet svc.session pkt with
            | `Granted regions -> on_granted svc regions
            | `Rejected -> if svc.state = Negotiating then svc.state <- St_rejected
            | `Stale | `Ignored -> ())
          | Fabric.Alloc_failed ->
            Negotiate.on_alloc_failed svc.session;
            if svc.state = Negotiating then svc.state <- St_rejected
          | Fabric.Active
              { Activermt.Packet.payload = Activermt.Packet.Exec { args; _ };
                seq;
                _;
              } -> (
            match svc.driver with
            | Some driver ->
              ignore (Memsync_driver.on_reply driver ~seq ~args)
            | None -> ())
          | _ -> ());
      (* Stagger arrivals so retry bursts don't synchronize. *)
      Engine.schedule engine
        ~delay:(0.05 *. float_of_int (svc.fid - 1))
        (fun () ->
          Timeseries.add series ~t:(Engine.now engine) "chaos.services";
          Negotiate.start svc.session ~now:(Engine.now engine)
            ~send:(nego_send svc);
          pump_nego svc ()))
    services;
  Engine.run ~until:cfg.horizon_s engine;
  (* Verify service state end-to-end: a service only counts as complete
     if every word is actually present in its switch region. *)
  let verified svc =
    match Controller.read_region controller ~fid:svc.fid ~stage:svc.stage with
    | None -> false
    | Some words ->
      Array.length words >= cfg.words
      && begin
           let ok = ref true in
           for i = 0 to cfg.words - 1 do
             if words.(i) <> expected_word ~fid:svc.fid i then ok := false
           done;
           !ok
         end
  in
  let completed = ref 0 in
  let outcomes =
    Array.to_list
      (Array.map
         (fun svc ->
           let o =
             match svc.state with
             | St_synced -> if verified svc then Synced else Incomplete
             | St_fell_back -> if verified svc then Fallback else Incomplete
             | St_rejected -> Rejected
             | St_timed_out -> Timeout
             | Negotiating -> Timeout
             | Syncing -> Incomplete
           in
           (match o with Synced | Fallback -> incr completed | _ -> ());
           (svc.fid, o))
         services)
  in
  let nego_attempts =
    Array.fold_left (fun acc s -> acc + Negotiate.attempts s.session) 0 services
  in
  let sync_packets =
    Array.fold_left
      (fun acc s ->
        acc + match s.driver with None -> 0 | Some d -> Memsync_driver.attempts d)
      0 services
  in
  let first_sends =
    Array.fold_left
      (fun acc s -> acc + match s.driver with None -> 0 | Some _ -> cfg.words)
      0 services
  in
  Telemetry.set_gauge telemetry "chaos.completion"
    (float_of_int !completed /. float_of_int cfg.services);
  (* Publish the switch's jit.hit/miss counters before any metrics dump. *)
  Activermt.Jit.flush_stats (Fabric.jit fabric);
  {
    outcomes;
    completed = !completed;
    completion = float_of_int !completed /. float_of_int cfg.services;
    negotiation_attempts = nego_attempts;
    negotiation_retries = nego_attempts - cfg.services;
    sync_packets;
    sync_retransmits = max 0 (sync_packets - first_sends);
    fallback_words = !fallback_words;
    fault_events = Faults.injected faults;
    sim_time_s = Engine.now engine;
    faults;
  }
