open Import

(* Planet-scale runs shrink each switch's register memory so a
   1024-device fleet fits in RAM: 20 stages x 2048 words is ~328 KB of
   modeled memory per switch (8-word blocks), against the default 10 MB.
   Allocation behaviour is unchanged — 256 blocks per stage as on the
   real device — only the block payload is smaller. *)
let scenario_params =
  { Rmt.Params.default with Rmt.Params.words_per_stage = 2048 }

type config = {
  k : int;  (** fat-tree arity (even) *)
  pods : int;  (** pods built out (partial fabric allowed) *)
  services : int;  (** concurrent services offered *)
  batch : int;  (** services enqueued per admission drain *)
  seed : int;
  fail_pod : int option;  (** rolling failure: every switch of this pod *)
  params : Rmt.Params.t;
}

(* k=32 x 24 pods and k=8 x 6 pods both close exactly on a power-of-two
   fleet: pods*k + (k/2)^2 = 1024 and 64 switches respectively. *)
let default_config =
  {
    k = 32;
    pods = 24;
    services = 100_000;
    batch = 1024;
    seed = 9001;
    fail_pod = Some 0;
    params = scenario_params;
  }

let quick_config =
  {
    k = 8;
    pods = 6;
    services = 5_000;
    batch = 512;
    seed = 9001;
    fail_pod = Some 0;
    params = scenario_params;
  }

type result = {
  switches : int;
  links : int;
  n_pods : int;
  offered : int;
  admitted : int;
  rejected : int;
  concurrent : int;
  spillover : int;
  adm_epochs : int;
  occupancy : float;
  place_us : float list;
      (** per-service placement+admission cost samples, one per batch *)
  sssp_runs : int;
  routed_pairs : int;
  flap_down_touched : int;
  flap_up_touched : int;
  flap_frac : float;  (** worst single-transition touched/routed fraction *)
  flap_repairs : int;
  failed_switches : int;
  relocated : int;
  lost : int;
  orphans : int;  (** residents left on a down switch — must be 0 *)
}

(* The service mix: mostly light services with 1-in-16 heavy-hitter
   monitors.  Heavy hitters pin 16 blocks in each of 6 stages, so a
   switch holds at most ~16 of them — a uniform third-heavy mix (the
   small-fleet benches' default) would cap the whole fleet far below the
   100k-service target; a skewed mix is also the realistic shape for a
   fleet-wide service population. *)
let light_kinds =
  [|
    Churn.Cache; Churn.Load_balancer; Churn.Flow_counter; Churn.Bloom_filter;
  |]

let arrivals ~n ~seed =
  let rng = Prng.create ~seed in
  List.init n (fun fid ->
      let kind =
        if Prng.int rng 16 = 0 then Churn.Heavy_hitter
        else light_kinds.(Prng.int rng (Array.length light_kinds))
      in
      (fid, kind))

let run_scenario ?(log = ignore) cfg =
  let topo = Topology.fat_tree ~pods:cfg.pods ~k:cfg.k () in
  let tel = Telemetry.create () in
  let fleet =
    Fleet.create ~policy:Placement.Hierarchical ~params:cfg.params
      ~telemetry:tel topo
  in
  let switches = Topology.switches topo in
  log
    (Printf.sprintf "fat-tree k=%d pods=%d: %d switches, %d links, %d pods"
       cfg.k cfg.pods switches (Topology.n_links topo) (Topology.n_pods topo));
  (* Admission through the batched epoch pipeline, in chunks so each
     drain yields one placement-cost sample. *)
  let place_us = ref [] in
  let rec admit_chunks todo =
    match todo with
    | [] -> ()
    | _ ->
      let chunk, rest =
        let rec split i acc = function
          | x :: tl when i < cfg.batch -> split (i + 1) (x :: acc) tl
          | tl -> (List.rev acc, tl)
        in
        split 0 [] todo
      in
      List.iter
        (fun (fid, kind) ->
          Fleet.enqueue_admission fleet ~fid (Harness.app_of_kind kind))
        chunk;
      let t0 = Sys.time () in
      ignore (Fleet.drain_admissions fleet);
      let dt = Sys.time () -. t0 in
      place_us :=
        (dt *. 1.0e6 /. float_of_int (max 1 (List.length chunk))) :: !place_us;
      admit_chunks rest
  in
  admit_chunks (arrivals ~n:cfg.services ~seed:cfg.seed);
  let admitted = Telemetry.counter_value tel "fleet.admitted" in
  let rejected = Telemetry.counter_value tel "fleet.rejected" in
  log
    (Printf.sprintf "admitted %d / %d (rejected %d, %d epochs)" admitted
       cfg.services rejected
       (Telemetry.counter_value tel "fleet.adm.epochs"));
  (* Link-flap drill against fully built route tables, so the touched
     fraction measures repair cost, not lazy builds.  The flapped link is
     pod 0's first edge uplink — the worst of the common cases, since it
     strands the edge switch's last-resort destinations the deepest. *)
  Topology.build_all_routes topo;
  let routed = Topology.routed_pairs topo in
  let edge0 = 0 and agg0 = cfg.k / 2 in
  let s0 = Topology.stats topo in
  ignore (Topology.set_link topo ~a:edge0 ~b:agg0 ~up:false);
  let s1 = Topology.stats topo in
  ignore (Topology.set_link topo ~a:edge0 ~b:agg0 ~up:true);
  let s2 = Topology.stats topo in
  let down_touched = s1.Topology.pairs_touched - s0.Topology.pairs_touched in
  let up_touched = s2.Topology.pairs_touched - s1.Topology.pairs_touched in
  let flap_frac =
    float_of_int (max down_touched up_touched) /. float_of_int (max 1 routed)
  in
  log
    (Printf.sprintf
       "link flap %d-%d: %d pairs touched down, %d up, of %d routed (%.4f%%)"
       edge0 agg0 down_touched up_touched routed (100.0 *. flap_frac));
  (* Rolling pod failure: every switch of the pod goes down one by one,
     each failure re-placing its residents on the survivors. *)
  let failed, relocated, lost =
    match cfg.fail_pod with
    | None -> (0, 0, 0)
    | Some pod ->
      List.fold_left
        (fun (f, r, l) sw ->
          let { Fleet.relocated; lost } = Fleet.fail_switch fleet ~sw in
          (f + 1, r + List.length relocated, l + List.length lost))
        (0, 0, 0)
        (Topology.pod_members topo ~pod)
  in
  log
    (Printf.sprintf "rolling pod failure: %d switches down, %d relocated, %d lost"
       failed relocated lost);
  let orphans =
    List.length
      (List.filter
         (fun (_, sw) -> not (Fleet.is_up fleet ~sw))
         (Fleet.residents fleet))
  in
  let stats = Topology.stats topo in
  {
    switches;
    links = Topology.n_links topo;
    n_pods = Topology.n_pods topo;
    offered = cfg.services;
    admitted;
    rejected;
    concurrent = List.length (Fleet.residents fleet);
    spillover = Telemetry.counter_value tel "fleet.spillover";
    adm_epochs = Telemetry.counter_value tel "fleet.adm.epochs";
    occupancy =
      Option.value ~default:0.0 (Telemetry.gauge_value tel "fleet.occupancy");
    place_us = List.rev !place_us;
    sssp_runs = stats.Topology.sssp_runs;
    routed_pairs = routed;
    flap_down_touched = down_touched;
    flap_up_touched = up_touched;
    flap_frac;
    flap_repairs = stats.Topology.repairs;
    failed_switches = failed;
    relocated;
    lost;
    orphans;
  }

let run ?(quick = false) () =
  let cfg = if quick then quick_config else default_config in
  Report.figure ~id:"fleetscale"
    ~title:
      "Planet-scale fleet: fat-tree admission, link-flap repair and rolling pod failure";
  let r = run_scenario ~log:print_endline cfg in
  let p50 = Stats.percentile r.place_us 50.0 in
  let p99 = Stats.percentile r.place_us 99.0 in
  Report.summary
    [
      ("switches", string_of_int r.switches);
      ("links", string_of_int r.links);
      ("concurrent services", string_of_int r.concurrent);
      ("occupancy", Printf.sprintf "%.3f" r.occupancy);
      ("placement cost p50/p99", Printf.sprintf "%.1f / %.1f us/service" p50 p99);
      ( "flap pairs touched",
        Printf.sprintf "%d of %d (%.4f%%)"
          (max r.flap_down_touched r.flap_up_touched)
          r.routed_pairs (100.0 *. r.flap_frac) );
      ( "pod failure",
        Printf.sprintf "%d switches -> %d relocated, %d lost" r.failed_switches
          r.relocated r.lost );
    ];
  Report.blank ()
