open Import

let arrivals ~n ~seed =
  List.concat_map
    (fun (e : Churn.epoch) ->
      List.filter_map
        (function
          | Churn.Arrive { fid; kind; _ } -> Some (fid, kind)
          | Churn.Depart _ -> None)
        e.Churn.events)
    (Churn.mixed_arrivals ~n (Prng.create ~seed))

let run ?(switch_counts = [ 1; 2; 4; 8 ]) ?(arrival_counts = [ 50; 150; 300 ])
    ?(seed = 4242) params =
  Report.figure ~id:"fleet"
    ~title:"Fleet scaling: concurrent services vs switch count and offered load";
  Report.columns
    [ "switches"; "arrivals"; "admitted"; "rejected"; "spillover"; "occupancy" ];
  let best_single = ref 0 and best_fleet = ref (0, 0) in
  List.iter
    (fun switches ->
      List.iter
        (fun n ->
          let tel = Telemetry.create () in
          let topo = Topology.full_mesh ~switches ~latency_s:1e-5 in
          let fleet =
            Fleet.create ~policy:Placement.Least_loaded ~params ~telemetry:tel
              topo
          in
          List.iter
            (fun (fid, kind) ->
              ignore (Fleet.admit fleet ~fid (Harness.app_of_kind kind)))
            (arrivals ~n ~seed);
          let admitted = Telemetry.counter_value tel "fleet.admitted" in
          let occupancy =
            Option.value ~default:0.0 (Telemetry.gauge_value tel "fleet.occupancy")
          in
          if switches = 1 then best_single := max !best_single admitted;
          if admitted > fst !best_fleet then best_fleet := (admitted, switches);
          Report.row
            [
              Report.int_cell switches;
              Report.int_cell n;
              Report.int_cell admitted;
              Report.int_cell (Telemetry.counter_value tel "fleet.rejected");
              Report.int_cell (Telemetry.counter_value tel "fleet.spillover");
              Report.float_cell occupancy;
            ])
        arrival_counts)
    switch_counts;
  let best, at = !best_fleet in
  Report.summary
    [
      ("max admitted, single switch", string_of_int !best_single);
      ( "max admitted, fleet",
        Printf.sprintf "%d (at %d switches)" best at );
      ( "capacity scaling",
        if !best_single > 0 then
          Printf.sprintf "%.2fx" (float_of_int best /. float_of_int !best_single)
        else "n/a" );
    ];
  Report.blank ()
