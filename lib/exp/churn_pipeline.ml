open Import

type result = {
  clients : int;
  batch : int;
  epochs : int;
  admitted : int;
  rejected : int;
  rescored : int;
  memo_hits : int;
  stage_refills : int;
  refills_saved : int;
  departures : int;
  final_residents : int;
  final_utilization : float;
  p50_tts_ms : float;
  p99_tts_ms : float;
  max_tts_ms : float;
  modeled_span_s : float;
  modeled_arrivals_per_sec : float;
  admit_wall_s : float;
  arrivals_per_sec : float;
}

let calibration_epochs = 20
let offered_fraction = 0.9

(* Modeled control-plane duration of one committed epoch: the estimate the
   Interactive commit path uses for entries (2*(n+3) per touched app), one
   batched write session, snapshot words for the reallocated residents.
   Allocation compute time is deliberately excluded so the modeled clock —
   and everything derived from it, including the p99 time-to-service CI
   artifacts — is bit-identical across machines and reruns. *)
let modeled_epoch_s cost ~logical_stages ~apps_touched ~words =
  if apps_touched = 0 then 0.0
  else
    Cost_model.total
      (Cost_model.breakdown_batched cost ~allocation_s:0.0
         ~entries_updated:(2 * (logical_stages + 3) * apps_touched)
         ~words_snapshotted:words ~notifications:apps_touched)

let run ?scheme ?policy ?(cost = Cost_model.default)
    ?(telemetry = Telemetry.default) ?(series = Timeseries.noop)
    ?(tracer = Trace.noop) ?(clock = Sys.time) ~params ~seed
    (zcfg : Churn.zipf_config) =
  let alloc = Allocator.create ?scheme ?policy ~telemetry ~series ~tracer params in
  let block_bytes = Rmt.Params.bytes_per_block params in
  let wpb = Rmt.Params.words_per_block params in
  let n_stages = params.Rmt.Params.logical_stages in
  let rng = Prng.create ~seed in
  let trace = Churn.zipf_churn zcfg rng in
  let tts = ref [] in
  let admitted = ref 0 in
  let rejected = ref 0 in
  let rescored = ref 0 in
  let memo_hits = ref 0 in
  let stage_refills = ref 0 in
  let refills_saved = ref 0 in
  let departures = ref 0 in
  let n_epochs = ref 0 in
  let admit_wall = ref 0.0 in
  (* Virtual clock: [now] is modeled control-plane time; [arrival_clock]
     spaces arrivals at the offered rate.  The rate is adaptive — the
     cumulative mean modeled service time per offered arrival, recomputed
     every epoch after a short calibration window — so the offered load
     tracks [offered_fraction] of what the control plane actually
     sustains at steady state instead of the unloaded (empty-pool) rate
     of the first few epochs.  Still a pure function of modeled values:
     bit-identical across machines and reruns. *)
  let now = ref 0.0 in
  (* Allocator-level series (alloc.admitted/rejected) record through the
     registry clock; wire it to the modeled epoch clock. *)
  Timeseries.set_clock series (fun () -> !now);
  let arrival_clock = ref 0.0 in
  let arrivals_offered = ref 0 in
  let inter_arrival = ref 0.0 in
  let calibrated = ref false in
  let words_of_realloc reallocated =
    List.fold_left
      (fun acc (fid, _) -> acc + (Allocator.app_blocks alloc ~fid * wpb))
      0 reallocated
  in
  let process_epoch (e : Churn.epoch) =
    incr n_epochs;
    let arrivals =
      List.filter_map
        (function
          | Churn.Arrive { fid; kind; _ } ->
            Some (Harness.arrival_of ~fid kind ~block_bytes)
          | Churn.Depart _ -> None)
        e.Churn.events
    in
    let k = List.length arrivals in
    let ectx =
      Trace.start_trace tracer
        ~attrs:
          [
            ("epoch", string_of_int e.Churn.index);
            ("batch", string_of_int k);
          ]
        "churn.epoch"
    in
    let t0 = clock () in
    let batch = Allocator.admit_batch ?trace:ectx alloc arrivals in
    admit_wall := !admit_wall +. (clock () -. t0);
    let s = batch.Allocator.stats in
    admitted := !admitted + s.Allocator.batch_admitted;
    rejected := !rejected + s.Allocator.batch_rejected;
    rescored := !rescored + s.Allocator.rescored;
    memo_hits := !memo_hits + s.Allocator.memo_hits;
    stage_refills := !stage_refills + s.Allocator.stage_refills;
    refills_saved := !refills_saved + s.Allocator.refills_saved;
    (* Modeled admission-epoch duration (one batched commit). *)
    let apps_touched =
      s.Allocator.batch_admitted + List.length batch.Allocator.batch_reallocated
    in
    let d_admit =
      modeled_epoch_s cost ~logical_stages:n_stages ~apps_touched
        ~words:(words_of_realloc batch.Allocator.batch_reallocated)
    in
    (* Arrival times and time-to-service.  During calibration the offered
       rate is unknown, so members arrive at epoch start and wait exactly
       one epoch; afterwards members arrive [inter_arrival] apart and the
       epoch starts once its last member is in. *)
    let calibrating = !n_epochs <= calibration_epochs in
    if not calibrating then begin
      inter_arrival :=
        !now /. (offered_fraction *. float_of_int (max 1 !arrivals_offered));
      if not !calibrated then begin
        calibrated := true;
        arrival_clock := !now
      end
    end;
    let epoch_start =
      if calibrating || k = 0 then !now
      else begin
        let last_arrival =
          !arrival_clock +. (float_of_int (k - 1) *. !inter_arrival)
        in
        Float.max !now last_arrival
      end
    in
    let epoch_end = epoch_start +. d_admit in
    List.iteri
      (fun j outcome ->
        match outcome with
        | Allocator.Rejected _ -> ()
        | Allocator.Admitted _ ->
          let arrive =
            if calibrating then epoch_start
            else !arrival_clock +. (float_of_int j *. !inter_arrival)
          in
          tts := (epoch_end -. arrive) :: !tts)
      batch.Allocator.outcomes;
    if not calibrating then
      arrival_clock := !arrival_clock +. (float_of_int k *. !inter_arrival);
    arrivals_offered := !arrivals_offered + k;
    now := epoch_end;
    Timeseries.add series ~t:!now ~by:(float_of_int k) "churn.offered";
    Timeseries.add series ~t:!now
      ~by:(float_of_int s.Allocator.batch_admitted)
      "churn.admitted";
    Timeseries.add series ~t:!now
      ~by:(float_of_int s.Allocator.batch_rejected)
      "churn.rejected";
    (* Departures drain sequentially after the admission commit; their
       (coalesced) table work advances the clock but does not delay the
       epoch's admissions.  Touched fids are deduplicated across the
       epoch's departures — a resident that expands after several
       departures is still written once in the epoch's batched session. *)
    let dep_touched = Hashtbl.create 16 in
    let dep_expanded = Hashtbl.create 16 in
    List.iter
      (function
        | Churn.Arrive _ -> ()
        | Churn.Depart { fid } ->
          incr departures;
          let expanded = Allocator.depart alloc ~fid in
          Hashtbl.replace dep_touched fid ();
          List.iter
            (fun (f, _) ->
              Hashtbl.replace dep_touched f ();
              Hashtbl.replace dep_expanded f ())
            expanded)
      e.Churn.events;
    if Hashtbl.length dep_touched > 0 then begin
      let dep_words =
        Hashtbl.fold
          (fun f () acc ->
            if Allocator.is_resident alloc ~fid:f then
              acc + (Allocator.app_blocks alloc ~fid:f * wpb)
            else acc)
          dep_expanded 0
      in
      now :=
        !now
        +. modeled_epoch_s cost ~logical_stages:n_stages
             ~apps_touched:(Hashtbl.length dep_touched) ~words:dep_words
    end
  in
  Seq.iter process_epoch trace;
  Allocator.shutdown alloc;
  let tts_ms = List.rev_map (fun s -> s *. 1000.0) !tts in
  let p50, p99, mx =
    match tts_ms with
    | [] -> (0.0, 0.0, 0.0)
    | l ->
      ( Stats.percentile l 50.0,
        Stats.percentile l 99.0,
        List.fold_left Float.max neg_infinity l )
  in
  {
    clients = zcfg.Churn.clients;
    batch = zcfg.Churn.batch;
    epochs = !n_epochs;
    admitted = !admitted;
    rejected = !rejected;
    rescored = !rescored;
    memo_hits = !memo_hits;
    stage_refills = !stage_refills;
    refills_saved = !refills_saved;
    departures = !departures;
    final_residents = List.length (Allocator.resident alloc);
    final_utilization = Allocator.utilization alloc;
    p50_tts_ms = p50;
    p99_tts_ms = p99;
    max_tts_ms = mx;
    modeled_span_s = !now;
    modeled_arrivals_per_sec =
      (if !now > 0.0 then float_of_int zcfg.Churn.clients /. !now else 0.0);
    admit_wall_s = !admit_wall;
    arrivals_per_sec =
      (if !admit_wall > 0.0 then float_of_int zcfg.Churn.clients /. !admit_wall
       else 0.0);
  }
