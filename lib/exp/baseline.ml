open Import
module Netvrm = Activermt_alloc.Netvrm

let kind_name = Churn.kind_to_string

(* Per-stage block demand of an instance under each system: ActiveRMT
   places per stage; the NetVRM-style baseline charges the app's largest
   per-stage demand against every stage (coarse-grained). *)
let netvrm_demand kind =
  let app = Harness.app_of_kind kind in
  Array.fold_left max 1 app.App.demand_blocks

let run_netvrm ?(n = 400) params =
  Report.figure ~id:"Baseline B1"
    ~title:"ActiveRMT allocator vs. NetVRM-style baseline (mixed arrivals)";
  let rng = Prng.create ~seed:515 in
  let trace = Churn.mixed_arrivals ~n rng in
  (* ActiveRMT side. *)
  let alloc = Allocator.create params in
  let armt_admitted = ref 0 in
  (* NetVRM side. *)
  let netvrm = Netvrm.create params in
  let net_admitted = ref 0 in
  let net_rejected_cap = ref 0 in
  List.iter
    (fun (e : Churn.epoch) ->
      List.iter
        (fun ev ->
          match ev with
          | Churn.Depart _ -> ()
          | Churn.Arrive { fid; kind; _ } -> (
            (match
               Allocator.admit alloc
                 (Harness.arrival_of ~fid kind
                    ~block_bytes:(Rmt.Params.bytes_per_block params))
             with
            | Allocator.Admitted _ -> incr armt_admitted
            | Allocator.Rejected _ -> ());
            match
              Netvrm.admit netvrm ~fid ~app_type:(kind_name kind)
                ~demand_blocks:(netvrm_demand kind)
            with
            | Netvrm.Granted _ -> incr net_admitted
            | Netvrm.Rejected_capacity -> incr net_rejected_cap
            | Netvrm.Rejected_unregistered -> ()))
        e.Churn.events)
    trace;
  Report.columns
    [ "system"; "admitted"; "useful_utilization"; "frag_blocks/stage" ];
  Report.row
    [
      "ActiveRMT";
      Report.int_cell !armt_admitted;
      Report.float_cell (Allocator.utilization alloc);
      "0";
    ];
  Report.row
    [
      "NetVRM-style";
      Report.int_cell !net_admitted;
      Report.float_cell (Netvrm.utilization netvrm);
      Report.int_cell (Netvrm.waste_blocks netvrm);
    ];
  Report.summary
    [
      ("arrivals", Report.int_cell n);
      ( "netvrm gross utilization (incl. fragmentation)",
        Report.float_cell (Netvrm.gross_utilization netvrm) );
      ( "concurrency advantage",
        Printf.sprintf "%.1fx"
          (float_of_int !armt_admitted /. float_of_int (max 1 !net_admitted)) );
    ]

let run_deployment ?(changes = 50) params =
  Report.figure ~id:"Baseline B2"
    ~title:"cumulative deployment time: ActiveRMT vs. monolithic P4 recompiles";
  let device = Rmt.Device.create params in
  let controller = Controller.create device in
  let rng = Prng.create ~seed:616 in
  let armt_total = ref 0.0 in
  let armt_disruption = ref 0.0 in
  let deployed = ref 0 in
  for fid = 1 to changes do
    let kind = Prng.choose rng Churn.all_kinds in
    let app = Harness.app_of_kind kind in
    match
      Controller.handle_request controller
        (Activermt_client.Negotiate.request_packet ~fid ~seq:0 app)
    with
    | Ok prov ->
      incr deployed;
      armt_total := !armt_total +. Cost_model.total prov.Controller.timing;
      (* Only reallocated services pause, and only for their snapshot. *)
      armt_disruption :=
        !armt_disruption
        +. (float_of_int (List.length prov.Controller.reallocated)
           *. prov.Controller.timing.Cost_model.snapshot_s)
    | Error _ -> ()
  done;
  (* The P4 model recompiles the composite image and re-provisions the
     switch on every change, blacking out all traffic each time. *)
  let p4_total = float_of_int changes *. Cost_model.p4_compile_s in
  let p4_disruption = float_of_int changes *. Cost_model.p4_reprovision_blackout_s in
  Report.columns [ "model"; "deploy_total_s"; "traffic_blackout_s" ];
  Report.row
    [ "ActiveRMT"; Report.float_cell !armt_total; Report.float_cell !armt_disruption ];
  Report.row [ "monolithic P4"; Report.float_cell p4_total; Report.float_cell p4_disruption ];
  Report.summary
    [
      ("service changes", Report.int_cell changes);
      ("activermt deployed", Report.int_cell !deployed);
      ( "speedup",
        Printf.sprintf "%.0fx" (p4_total /. Float.max 1e-9 !armt_total) );
    ]
