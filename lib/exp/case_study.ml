open Import
module Engine = Netsim.Engine
module Fabric = Netsim.Fabric
module Cache_client = Activermt_client.Cache_client
module Hh_client = Activermt_client.Hh_client
module Negotiate = Activermt_client.Negotiate
module Memsync_driver = Activermt_client.Memsync_driver

type config = {
  n_keys : int;
  zipf_exponent : float;
  request_rate_pps : float;
  populate_rate_pps : float;
  extract_compute_s : float;
  hh_window_s : float;
  refresh_base_s : float;
  loss_rate : float;
  seed : int;
}

let default_config =
  {
    n_keys = 300_000;
    zipf_exponent = 1.0;
    request_rate_pps = 20_000.0;
    populate_rate_pps = 100_000.0;
    extract_compute_s = 0.15;
    hh_window_s = 2.0;
    refresh_base_s = 0.1;
    loss_rate = 0.0;
    seed = 99;
  }

type tenant_stats = {
  addr : int;
  fid : int;
  arrival_s : float;
  first_hit_s : float option;
  bins_hits : int array;
  bins_total : int array;
  n_buckets : int;
  disruptions : (float * float) list;
}

let hit_rate_window ts ~lo_ms ~hi_ms =
  let hits = ref 0 and total = ref 0 in
  let last = Array.length ts.bins_total - 1 in
  for b = max 0 lo_ms to min last hi_ms do
    hits := !hits + ts.bins_hits.(b);
    total := !total + ts.bins_total.(b)
  done;
  if !total = 0 then 0.0 else float_of_int !hits /. float_of_int !total

type result = { tenants : tenant_stats list; duration_s : float }

type mode = Plain | Monitor | Query

type tenant = {
  t_addr : int;
  t_fid_hh : int;
  t_fid_cache : int;
  t_arrival : float;
  t_use_monitor : bool;
  t_zipf : Zipf.t;
  mutable t_mode : mode;
  mutable t_cc : Cache_client.t option;
  mutable t_hh : Hh_client.t option;
  mutable t_seq : int;
  t_pending_pop : (int, unit) Hashtbl.t;
  mutable t_extract : Memsync_driver.t option;
  mutable t_thresholds : int array;
  mutable t_key0 : int array;
  mutable t_key1 : int array;
  mutable t_refresh : int;
  t_hits : int array;
  t_total : int array;
  mutable t_first_hit : float option;
}

let next_seq t =
  let s = t.t_seq in
  t.t_seq <- s + 1;
  s

type world = {
  cfg : config;
  params : Rmt.Params.t;
  engine : Engine.t;
  fabric : Fabric.t;
  controller : Controller.t;
  server : Fabric.address;
  extractors :
    (Activermt.Packet.fid, int array -> Kv.key option) Hashtbl.t;
  duration : float;
}

let make_world ?(policy = Mutant.Most_constrained) cfg params ~duration =
  let engine = Engine.create () in
  let device = Rmt.Device.create params in
  let controller =
    Controller.create ~mode:`Interactive ~policy
      ~extraction_timeout_s:2.0 device
  in
  let fabric =
    Fabric.create ~loss_rate:cfg.loss_rate ~loss_seed:(cfg.seed + 1) ~engine
      ~controller ()
  in
  let server = 1 in
  let extractors = Hashtbl.create 8 in
  let w = { cfg; params; engine; fabric; controller; server; extractors; duration } in
  let serve key src =
    match Kv.rank_of_key key with
    | None -> ()
    | Some rank ->
      Fabric.send fabric
        { Fabric.src = server;
          dst = src;
          payload = Fabric.Kv_reply { key; value = Kv.value_of_rank rank }; trace = None }
  in
  Fabric.attach fabric server (fun msg ->
      match msg.Fabric.payload with
      | Fabric.Kv_request { key } -> serve key msg.Fabric.src
      | Fabric.Active pkt -> (
        match pkt.Activermt.Packet.payload with
        | Activermt.Packet.Exec { args; _ } -> (
          match Hashtbl.find_opt extractors pkt.Activermt.Packet.fid with
          | Some extract -> (
            match extract args with
            | Some key -> serve key msg.Fabric.src
            | None -> ())
          | None -> ())
        | Activermt.Packet.Request _ | Activermt.Packet.Response _
        | Activermt.Packet.Bare ->
          ())
      | Fabric.Kv_reply _ | Fabric.Alloc_failed | Fabric.Notify_realloc -> ());
  w

let record w t ~hit =
  let bin = int_of_float (Engine.now w.engine *. 1000.0) in
  let bin = min bin (Array.length t.t_total - 1) in
  t.t_total.(bin) <- t.t_total.(bin) + 1;
  if hit then begin
    t.t_hits.(bin) <- t.t_hits.(bin) + 1;
    if t.t_first_hit = None then t.t_first_hit <- Some (Engine.now w.engine)
  end

let send_active w t ~fid pkt =
  Fabric.send w.fabric
    { Fabric.src = t.t_addr; dst = w.server; payload = Fabric.Active pkt; trace = None };
  ignore fid

(* -- object request loop ------------------------------------------------ *)

let request_key t = Kv.key_of_rank (Zipf.sample t.t_zipf)

let send_request w t =
  let key = request_key t in
  match t.t_mode with
  | Plain ->
    Fabric.send w.fabric
      { Fabric.src = t.t_addr; dst = w.server; payload = Fabric.Kv_request { key }; trace = None }
  | Monitor -> (
    match t.t_hh with
    | Some hh ->
      send_active w t ~fid:t.t_fid_hh
        (Hh_client.monitor_packet hh ~seq:(next_seq t) key)
    | None -> ())
  | Query -> (
    match t.t_cc with
    | Some cc ->
      send_active w t ~fid:t.t_fid_cache
        (Cache_client.query_packet cc ~seq:(next_seq t) key)
    | None -> ())

let rec request_loop w t =
  if Engine.now w.engine < w.duration then begin
    send_request w t;
    Engine.schedule w.engine ~delay:(1.0 /. w.cfg.request_rate_pps) (fun () ->
        request_loop w t)
  end

(* -- cache population --------------------------------------------------- *)

let populate_objects w t objects =
  match t.t_cc with
  | None -> ()
  | Some cc ->
    let planned = Cache_client.plan_population cc ~objects in
    let interval = 1.0 /. w.cfg.populate_rate_pps in
    List.iteri
      (fun i (key, value) ->
        Engine.schedule w.engine ~delay:(float_of_int i *. interval) (fun () ->
            match t.t_cc with
            | Some cc ->
              let seq = next_seq t in
              Hashtbl.replace t.t_pending_pop seq ();
              send_active w t ~fid:t.t_fid_cache
                (Cache_client.populate_packet cc ~seq key ~value)
            | None -> ()))
      planned

let top_objects n =
  List.init n (fun rank -> (Kv.key_of_rank rank, Kv.value_of_rank rank))

(* Multiplicative refresh schedule: growing prefixes of the popularity
   ranking, starting 100 ms after the grant (Section 6.3). *)
let rec refresh_population w t =
  match t.t_cc with
  | None -> ()
  | Some cc ->
    let k = t.t_refresh in
    let chunk =
      min (Cache_client.n_buckets cc) (1024 * int_of_float (4.0 ** float_of_int k))
    in
    populate_objects w t (top_objects chunk);
    t.t_refresh <- k + 1;
    if chunk < Cache_client.n_buckets cc && Engine.now w.engine < w.duration then
      Engine.schedule w.engine
        ~delay:(w.cfg.refresh_base_s *. (2.0 ** float_of_int k))
        (fun () -> refresh_population w t)

(* -- heavy-hitter extraction (reliable data-plane memsync) -------------- *)

let extraction_send w t ~seq:_ pkt = send_active w t ~fid:t.t_fid_hh pkt

let rec extraction_tick w t =
  match t.t_extract with
  | None -> ()
  | Some driver ->
    ignore
      (Memsync_driver.tick driver ~now:(Engine.now w.engine)
         ~send:(extraction_send w t));
    Engine.schedule w.engine ~delay:0.02 (fun () -> extraction_tick w t)

let start_extraction w t =
  match t.t_hh with
  | None -> ()
  | Some hh ->
    t.t_mode <- Plain;
    let n = Hh_client.n_slots hh in
    let stages =
      [ Hh_client.threshold_stage hh; Hh_client.key0_stage hh;
        Hh_client.key1_stage hh ]
    in
    (* Reads are idempotent and acked via RTS: the driver retransmits on
       timeout, so extraction survives a lossy data plane. *)
    let driver =
      Memsync_driver.create ~fid:t.t_fid_hh ~stages ~count:n ~timeout_s:0.02
        Memsync_driver.Read
    in
    t.t_extract <- Some driver;
    Memsync_driver.start driver ~now:(Engine.now w.engine)
      ~send:(extraction_send w t);
    Engine.schedule w.engine ~delay:0.02 (fun () -> extraction_tick w t)

let finish_extraction w t =
  (* Context switch: release the monitor, request the cache allocation. *)
  send_active w t ~fid:t.t_fid_hh (Negotiate.release_packet ~fid:t.t_fid_hh);
  t.t_hh <- None;
  Engine.schedule w.engine ~delay:1.0e-4 (fun () ->
      send_active w t ~fid:t.t_fid_cache
        (Negotiate.request_packet ~fid:t.t_fid_cache ~seq:(next_seq t)
           Cache.service))

let memsync_reply w t driver ~seq args =
  if Memsync_driver.on_reply driver ~seq ~args && Memsync_driver.is_done driver
  then begin
    (match Memsync_driver.values driver with
    | [| thresholds; key0s; key1s |] ->
      t.t_thresholds <- thresholds;
      t.t_key0 <- key0s;
      t.t_key1 <- key1s
    | _ -> ());
    t.t_extract <- None;
    Engine.schedule w.engine ~delay:w.cfg.extract_compute_s (fun () ->
        finish_extraction w t)
  end

let frequent_objects t =
  Hh_client.frequent_items ~thresholds:t.t_thresholds ~key0s:t.t_key0
    ~key1s:t.t_key1
  |> List.filter_map (fun ((key : Kv.key), _count) ->
         match Kv.rank_of_key key with
         | Some rank -> Some (key, Kv.value_of_rank rank)
         | None -> None)

(* -- allocation protocol ------------------------------------------------ *)

let on_cache_grant w t regions =
  match
    Cache_client.create w.params ~policy:(Controller.allocator w.controller |> Allocator.policy)
      ~fid:t.t_fid_cache ~regions
  with
  | Error e -> failwith ("case study: cache synthesis failed: " ^ e)
  | Ok cc ->
    let fresh = t.t_cc = None in
    t.t_cc <- Some cc;
    t.t_refresh <- 0;
    t.t_mode <- Query;
    if t.t_use_monitor && fresh then
      (* Figure 9a: populate once from the extracted frequent items. *)
      populate_objects w t (frequent_objects t)
    else refresh_population w t

let on_hh_grant w t regions =
  match
    Hh_client.create w.params ~policy:(Controller.allocator w.controller |> Allocator.policy)
      ~fid:t.t_fid_hh ~regions
  with
  | Error e -> failwith ("case study: hh synthesis failed: " ^ e)
  | Ok hh ->
    t.t_hh <- Some hh;
    t.t_mode <- Monitor;
    Engine.schedule w.engine ~delay:w.cfg.hh_window_s (fun () -> start_extraction w t)

let on_realloc_notice w t =
  (* Pause, extract (modeled as client compute), ack; the switch answers
     with our new regions. *)
  t.t_mode <- Plain;
  Engine.schedule w.engine ~delay:w.cfg.extract_compute_s (fun () ->
      send_active w t ~fid:t.t_fid_cache
        (Negotiate.extraction_done_packet ~fid:t.t_fid_cache))

let tenant_handler w t msg =
  match msg.Fabric.payload with
  | Fabric.Kv_reply _ -> record w t ~hit:false
  | Fabric.Alloc_failed -> t.t_mode <- Plain
  | Fabric.Notify_realloc -> on_realloc_notice w t
  | Fabric.Kv_request _ -> ()
  | Fabric.Active pkt -> (
    match pkt.Activermt.Packet.payload with
    | Activermt.Packet.Response { status = Activermt.Packet.Granted; regions } ->
      if pkt.Activermt.Packet.fid = t.t_fid_hh && t.t_use_monitor then
        on_hh_grant w t regions
      else if pkt.Activermt.Packet.fid = t.t_fid_cache then
        on_cache_grant w t regions
    | Activermt.Packet.Response { status = Activermt.Packet.Rejected; _ } ->
      t.t_mode <- Plain
    | Activermt.Packet.Exec { args; _ } -> (
      let seq = pkt.Activermt.Packet.seq in
      match t.t_extract with
      | Some driver when pkt.Activermt.Packet.fid = t.t_fid_hh ->
        memsync_reply w t driver ~seq args
      | Some _ | None ->
        if Hashtbl.mem t.t_pending_pop seq then Hashtbl.remove t.t_pending_pop seq
        else record w t ~hit:true)
    | Activermt.Packet.Request _ | Activermt.Packet.Bare -> ())

let make_tenant w ~addr ~fid_base ~arrival ~use_monitor rng =
  let bins = int_of_float (w.duration *. 1000.0) + 1 in
  let t =
    {
      t_addr = addr;
      t_fid_hh = fid_base;
      t_fid_cache = fid_base + 100;
      t_arrival = arrival;
      t_use_monitor = use_monitor;
      t_zipf = Zipf.create ~exponent:w.cfg.zipf_exponent ~n:w.cfg.n_keys rng;
      t_mode = Plain;
      t_cc = None;
      t_hh = None;
      t_seq = 0;
      t_pending_pop = Hashtbl.create 1024;
      t_extract = None;
      t_thresholds = [||];
      t_key0 = [||];
      t_key1 = [||];
      t_refresh = 0;
      t_hits = Array.make bins 0;
      t_total = Array.make bins 0;
      t_first_hit = None;
    }
  in
  Fabric.attach w.fabric addr (tenant_handler w t);
  Fabric.register_fid w.fabric ~fid:t.t_fid_hh ~owner:addr;
  Fabric.register_fid w.fabric ~fid:t.t_fid_cache ~owner:addr;
  Hashtbl.replace w.extractors t.t_fid_hh (fun args ->
      if Array.length args >= 2 then Some { Kv.k0 = args.(0); k1 = args.(1) }
      else None);
  Hashtbl.replace w.extractors t.t_fid_cache (fun args ->
      if Array.length args >= 3 then Some { Kv.k0 = args.(1); k1 = args.(2) }
      else None);
  (* Arrival: start the request loop and negotiate the first allocation. *)
  Engine.schedule_at w.engine ~time:arrival (fun () ->
      request_loop w t;
      let fid = if use_monitor then t.t_fid_hh else t.t_fid_cache in
      let app = if use_monitor then Heavy_hitter.service else Cache.service in
      send_active w t ~fid (Negotiate.request_packet ~fid ~seq:(next_seq t) app));
  t

(* Post-hoc: zero-hit windows after the tenant first became operational. *)
let find_disruptions t ~duration =
  match t.t_first_hit with
  | None -> []
  | Some first ->
    let bins = Array.length t.t_total in
    let first_bin = int_of_float (first *. 1000.0) in
    let out = ref [] in
    let start = ref (-1) in
    let min_window = 20 in
    for b = first_bin to bins - 1 do
      let dead = t.t_total.(b) > 0 && t.t_hits.(b) = 0 in
      if dead && !start < 0 then start := b
      else if (not dead) && t.t_total.(b) > 0 && !start >= 0 then begin
        if b - !start >= min_window then
          out := (float_of_int !start /. 1000.0, float_of_int b /. 1000.0) :: !out;
        start := -1
      end
    done;
    if !start >= 0 && bins - !start >= min_window then
      out := (float_of_int !start /. 1000.0, duration) :: !out;
    List.rev !out

let stats_of w t =
  {
    addr = t.t_addr;
    fid = t.t_fid_cache;
    arrival_s = t.t_arrival;
    first_hit_s = t.t_first_hit;
    bins_hits = t.t_hits;
    bins_total = t.t_total;
    n_buckets = (match t.t_cc with Some cc -> Cache_client.n_buckets cc | None -> 0);
    disruptions = find_disruptions t ~duration:w.duration;
  }

let run_single ?(config = default_config) params =
  let duration = 8.0 in
  let w = make_world config params ~duration in
  let rng = Prng.create ~seed:config.seed in
  let t =
    make_tenant w ~addr:11 ~fid_base:301 ~arrival:0.0 ~use_monitor:true
      (Prng.split rng)
  in
  Engine.run ~until:duration w.engine;
  { tenants = [ stats_of w t ]; duration_s = duration }

let run_multi ?(config = default_config) ?(n_tenants = 4) ?(stagger_s = 5.0) params =
  let duration = (stagger_s *. float_of_int n_tenants) +. 5.0 in
  let w = make_world config params ~duration in
  let rng = Prng.create ~seed:config.seed in
  let tenants =
    List.init n_tenants (fun i ->
        make_tenant w ~addr:(11 + i) ~fid_base:(301 + i)
          ~arrival:(stagger_s *. float_of_int i)
          ~use_monitor:false (Prng.split rng))
  in
  Engine.run ~until:duration w.engine;
  { tenants = List.map (stats_of w) tenants; duration_s = duration }

(* -- printing ------------------------------------------------------------ *)

let print_timeline ?(window_ms = 100) ts ~duration =
  let bins = int_of_float (duration *. 1000.0) in
  let rows = ref [] in
  let t = ref 0 in
  while !t < bins do
    let cells =
      List.map
        (fun s ->
          Report.float_cell (hit_rate_window s ~lo_ms:!t ~hi_ms:(!t + window_ms - 1)))
        ts
    in
    rows := (!t, cells) :: !rows;
    t := !t + window_ms
  done;
  Report.series
    ~columns:("ms" :: List.map (fun s -> Printf.sprintf "hit_rate_fid%d" s.fid) ts)
    (List.rev !rows)

let print_9a ?(config = default_config) params =
  Report.figure ~id:"Figure 9a"
    ~title:"case study: HH monitor -> context switch -> cache (hit rate over time)";
  let r = run_single ~config params in
  print_timeline r.tenants ~duration:r.duration_s;
  let t = List.hd r.tenants in
  Report.summary
    [
      ( "first cache hit at (s)",
        match t.first_hit_s with Some v -> Report.float_cell v | None -> "never" );
      ("cache buckets", Report.int_cell t.n_buckets);
      ( "stable hit rate (last 2 s)",
        Report.float_cell
          (hit_rate_window t
             ~lo_ms:(int_of_float ((r.duration_s -. 2.0) *. 1000.0))
             ~hi_ms:(int_of_float (r.duration_s *. 1000.0))) );
    ]

let print_9b ?(config = default_config) params =
  Report.figure ~id:"Figure 9b"
    ~title:"case study: four staggered cache tenants (hit rate over time)";
  let r = run_multi ~config params in
  print_timeline ~window_ms:250 r.tenants ~duration:r.duration_s;
  Report.summary
    (List.map
       (fun t ->
         ( Printf.sprintf "tenant fid %d (arrived %.0fs)" t.fid t.arrival_s,
           Printf.sprintf "buckets=%d stable_hit_rate=%.3f" t.n_buckets
             (hit_rate_window t
                ~lo_ms:(int_of_float ((r.duration_s -. 2.0) *. 1000.0))
                ~hi_ms:(int_of_float (r.duration_s *. 1000.0))) ))
       r.tenants)

let print_10 ?(config = default_config) params =
  Report.figure ~id:"Figure 10"
    ~title:"per-arrival zoom: provisioning gaps and the reallocation disruption";
  let r = run_multi ~config params in
  List.iter
    (fun t ->
      Printf.printf "\n- tenant fid %d (arrival %.1fs)\n" t.fid t.arrival_s;
      let lo = int_of_float (t.arrival_s *. 1000.0) in
      let rows =
        List.init 150 (fun i ->
            let b = lo + (i * 10) in
            ( b,
              [ Report.float_cell (hit_rate_window t ~lo_ms:b ~hi_ms:(b + 9)) ] ))
      in
      Report.series ~every:5 ~columns:[ "ms"; "hit_rate(10ms)" ] rows;
      Report.summary
        [
          ( "provisioning gap (arrival -> first hit, s)",
            match t.first_hit_s with
            | Some v -> Report.float_cell (v -. t.arrival_s)
            | None -> "never" );
          ( "disruptions (s)",
            if t.disruptions = [] then "none"
            else
              String.concat "; "
                (List.map
                   (fun (a, b) -> Printf.sprintf "%.3f-%.3f (%.0f ms)" a b ((b -. a) *. 1000.0))
                   t.disruptions) );
        ])
    r.tenants
