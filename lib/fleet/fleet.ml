open Import
module Pool = Activermt_alloc.Pool
module Runtime = Activermt.Runtime
module Jit = Activermt.Jit

type node = {
  sw : Topology.switch_id;
  controller : Controller.t;
  fabric : Fabric.t;
  faults : Faults.t option;
}

(* A service waiting in the fleet's global admission queue: drained in
   batches into per-switch provision queues (Controller.enqueue_request /
   Controller.drain) instead of one handle_request per service. *)
type pending_admission = {
  pa_fid : int;
  pa_app : App.t;
  pa_client : Fabric.address option;
  pa_tenant : int option;
  mutable pa_tried : Topology.switch_id list;
}

type t = {
  topo : Topology.t;
  engine : Engine.t;
  policy : Placement.policy;
  nodes : node array;
  down : bool array;
  residency : (int, Topology.switch_id) Hashtbl.t;
  apps : (int, App.t) Hashtbl.t;
  clients : (int, Fabric.address) Hashtbl.t;
  shims : (int, Shim.t) Hashtbl.t;
  admissions : pending_admission Queue.t;
  tenants : Tenant.t option;
  memsync_word_budget : int;
  (* Incrementally maintained per-switch load caches — admission at
     planet scale must not rescan every allocator per decision.  Only
     the switch a bind/depart touches is refreshed ([touch_switch]);
     [committed] tracks the sum of residents' minimum block demands, a
     safe lower bound used to skip certainly-full switches during
     hierarchical placement (elastic residents can shrink, so raw free
     blocks would over-prune). *)
  util : float array;
  nres : int array;
  committed : int array;
  cap_blocks : int;  (* per-switch capacity in blocks *)
  mutable up_sum : float;
  mutable up_count : int;
  tel : Telemetry.t;
  series : Timeseries.t;
  tracer : Trace.t;
}

let sw_counter i name = Printf.sprintf "fleet.sw.%d.%s" i name

(* Refresh one switch's cached load after its pool changed, and the
   fleet-wide occupancy gauge from the running aggregates. *)
let touch_switch t sw =
  let u = Allocator.utilization (Controller.allocator t.nodes.(sw).controller) in
  let old = t.util.(sw) in
  t.util.(sw) <- u;
  Telemetry.set_gauge t.tel (sw_counter sw "utilization") u;
  if not t.down.(sw) then t.up_sum <- t.up_sum -. old +. u;
  Telemetry.set_gauge t.tel "fleet.occupancy"
    (if t.up_count = 0 then 0.0
     else Float.max 0.0 t.up_sum /. float_of_int t.up_count)

(* Bridge a message that surfaced at switch [from] but is destined for a
   node behind another switch: one link hop toward the target, then into
   the neighbour fabric (whose own switch processing applies — transit
   switches forward FIDs they don't host as plain traffic). *)
let route t ~from msg =
  let unroutable () =
    Telemetry.incr t.tel "fleet.unroutable";
    match msg.Fabric.trace with
    | Some ctx when Trace.enabled t.tracer ->
      ignore
        (Trace.instant t.tracer ctx
           ~attrs:
             [
               ("cause", "unroutable");
               ("switch", string_of_int from);
               ("dst", string_of_int msg.Fabric.dst);
             ]
           "fault.drop")
    | Some _ | None -> ()
  in
  let target =
    if msg.Fabric.dst < Array.length t.nodes then Some msg.Fabric.dst
    else Topology.home_of t.topo ~client:msg.Fabric.dst
  in
  match target with
  | None -> unroutable ()
  | Some target -> (
    match Topology.next_hop t.topo ~src:from ~dst:target with
    | None -> unroutable ()
    | Some hop ->
      if t.down.(hop) then unroutable ()
      else begin
        Telemetry.incr t.tel "fleet.bridged";
        let msg =
          match msg.Fabric.trace with
          | Some ctx when Trace.enabled t.tracer ->
            let child =
              Trace.instant t.tracer ctx
                ~attrs:
                  [
                    ("switch", string_of_int from);
                    ("link", Printf.sprintf "%d->%d" from hop);
                  ]
                "fleet.bridge"
            in
            { msg with Fabric.trace = Some child }
          | Some _ | None -> msg
        in
        Engine.schedule t.engine
          ~delay:(Topology.latency t.topo ~src:from ~dst:hop)
          (fun () -> Fabric.send t.nodes.(hop).fabric msg)
      end)

let create ?(policy = Placement.Least_loaded) ?scheme ?(params = Rmt.Params.default)
    ?wire_latency_s ?(memsync_word_budget = 4096) ?faults
    ?(faults_seed = 0xF1EE7) ?jit ?tenants ?(telemetry = Telemetry.default)
    ?(series = Timeseries.noop) ?(tracer = Trace.noop) topo =
  if memsync_word_budget < 0 then
    invalid_arg "Fleet.create: memsync_word_budget must be non-negative";
  let faults =
    match faults with
    | Some p when not (Faults.is_none p) -> Some p
    | Some _ | None -> None
  in
  let n = Topology.switches topo in
  let engine = Engine.create ~telemetry () in
  if Trace.enabled tracer then Trace.set_clock tracer (fun () -> Engine.now engine);
  let nodes =
    Array.init n (fun sw ->
        let device = Rmt.Device.create params in
        (* Every switch draws from its own PRNG stream so adding a switch
           doesn't shift another's fault schedule. *)
        let node_faults =
          Option.map
            (fun p ->
              Faults.create ~seed:(faults_seed + (sw * 7919)) ~telemetry p)
            faults
        in
        let cost =
          Option.bind faults (fun p ->
              if p.Faults.table_update_slowdown > 1.0 then
                Some
                  (Cost_model.degrade Cost_model.default
                     ~slowdown:p.Faults.table_update_slowdown)
              else None)
        in
        let controller =
          Controller.create ?scheme ?cost ~mode:`Auto ~telemetry:telemetry
            ~series ~tracer device
        in
        let fabric =
          Fabric.create ~address:sw ?wire_latency_s ?faults:node_faults
            ?jit ~telemetry ~tracer ~engine ~controller ()
        in
        { sw; controller; fabric; faults = node_faults })
  in
  let t =
    {
      topo;
      engine;
      policy;
      nodes;
      down = Array.make n false;
      residency = Hashtbl.create 64;
      apps = Hashtbl.create 64;
      clients = Hashtbl.create 64;
      shims = Hashtbl.create 64;
      admissions = Queue.create ();
      tenants;
      memsync_word_budget;
      util = Array.make n 0.0;
      nres = Array.make n 0;
      committed = Array.make n 0;
      cap_blocks =
        Allocator.total_blocks (Controller.allocator nodes.(0).controller);
      up_sum = 0.0;
      up_count = n;
      tel = telemetry;
      series;
      tracer;
    }
  in
  (* Anything not attached locally bridges toward its home switch — one
     fallback closure per fabric instead of one per (fabric, address). *)
  Array.iteri
    (fun s node ->
      Fabric.attach_default node.fabric (fun msg -> route t ~from:s msg);
      Telemetry.set_gauge t.tel (sw_counter s "up") 1.0;
      touch_switch t s)
    nodes;
  t

let n_switches t = Array.length t.nodes
let topology t = t.topo
let policy t = t.policy
let engine t = t.engine
let tracer t = t.tracer

let node t ~sw =
  if sw < 0 || sw >= Array.length t.nodes then
    invalid_arg "Fleet: switch out of range";
  t.nodes.(sw)

let controller t ~sw = (node t ~sw).controller
let fabric t ~sw = (node t ~sw).fabric

let is_up t ~sw =
  if sw < 0 || sw >= Array.length t.nodes then
    invalid_arg "Fleet.is_up: switch out of range";
  not t.down.(sw)

let loads t =
  List.init (Array.length t.nodes) (fun i ->
      {
        Placement.switch = i;
        utilization = t.util.(i);
        residents = t.nres.(i);
        up = not t.down.(i);
      })

let attach_client t ~client ~home handler =
  if client < Array.length t.nodes then
    invalid_arg "Fleet.attach_client: client address collides with a switch id";
  Topology.home t.topo ~client home;
  (* Only the home fabric needs the handler; every other fabric's
     default node already bridges unknown addresses toward home. *)
  Fabric.attach t.nodes.(home).fabric client handler

let inject t ~client msg =
  match Topology.home_of t.topo ~client with
  | None -> invalid_arg "Fleet.inject: unknown client"
  | Some home -> Fabric.inject t.nodes.(home).fabric msg

let shim_step t ~fid ev =
  match Hashtbl.find_opt t.shims fid with
  | None -> ()
  | Some shim -> ignore (Shim.transition shim ev)

(* Try the service at one specific switch's controller; true on commit. *)
let admit_at ?trace t ~sw ~fid app =
  let request = Negotiate.request_packet ~fid ~seq:0 app in
  match Controller.handle_request ?trace t.nodes.(sw).controller request with
  | Ok _provision -> true
  | Error (`Rejected _) | Error (`Bad_packet _) -> false

let app_charge (app : App.t) = Array.fold_left ( + ) 0 app.App.demand_blocks

let bind_placement t ~fid ~sw =
  Hashtbl.replace t.residency fid sw;
  (match Hashtbl.find_opt t.clients fid with
  | Some owner -> Fabric.register_fid t.nodes.(sw).fabric ~fid ~owner
  | None -> ());
  (match Hashtbl.find_opt t.apps fid with
  | Some app ->
    t.committed.(sw) <- t.committed.(sw) + app_charge app;
    t.nres.(sw) <- t.nres.(sw) + 1
  | None -> ());
  touch_switch t sw

let unbind_placement t ~fid ~sw =
  Hashtbl.remove t.residency fid;
  (match Hashtbl.find_opt t.apps fid with
  | Some app ->
    t.committed.(sw) <- max 0 (t.committed.(sw) - app_charge app);
    t.nres.(sw) <- max 0 (t.nres.(sw) - 1)
  | None -> ());
  touch_switch t sw

let pods_arg t =
  let np = Topology.n_pods t.topo in
  if np <= 1 then None
  else Some ((fun sw -> Topology.pod_of t.topo ~sw), np)

(* Lazy hierarchical candidate stream: pods round-robin from the
   service's start pod (client home's pod, else [fid mod pods] so
   anonymous arrivals spread deterministically), switches first-fit
   within each pod, skipping any switch whose committed minimum demand
   already rules the service out.  Nothing is materialized and no
   allocator is touched until a candidate is actually tried, which is
   what keeps placement cost sub-linear in fleet size. *)
let hier_seq t ~home ~fid ~demand : Topology.switch_id Seq.t =
  let viable sw =
    (not t.down.(sw)) && t.committed.(sw) + demand <= t.cap_blocks
  in
  let np = Topology.n_pods t.topo in
  let start =
    match home with
    | Some h -> Topology.pod_of t.topo ~sw:h
    | None -> fid mod np
  in
  Seq.concat_map
    (fun k ->
      let pod = (start + k) mod np in
      Topology.pod_members t.topo ~pod |> List.to_seq |> Seq.filter viable)
    (Seq.init np Fun.id)

let candidate_seq ?loads:l t ~home ~fid ~demand : Topology.switch_id Seq.t =
  match t.policy with
  | Placement.Hierarchical when Topology.n_pods t.topo > 1 ->
    hier_seq t ~home ~fid ~demand
  | _ ->
    let l = match l with Some l -> l | None -> loads t in
    List.to_seq (Placement.order ?pods:(pods_arg t) t.policy ~home l)

let admit t ?client ~fid app =
  if Hashtbl.mem t.residency fid then
    invalid_arg (Printf.sprintf "Fleet.admit: fid %d already placed" fid);
  Telemetry.with_span t.tel "fleet.place" @@ fun () ->
  let root =
    Trace.start_trace t.tracer ~attrs:[ ("fid", string_of_int fid) ]
      "fleet.admit"
  in
  let home = Option.bind client (fun c -> Topology.home_of t.topo ~client:c) in
  let candidates = candidate_seq t ~home ~fid ~demand:(app_charge app) in
  let rec go tried seq =
    match Seq.uncons seq with
    | None ->
      Telemetry.incr t.tel "fleet.rejected";
      Timeseries.add t.series "fleet.rejected";
      (match root with
      | Some ctx ->
        ignore
          (Trace.instant t.tracer ctx
             ~attrs:[ ("tried", string_of_int tried) ]
             "fleet.rejected")
      | None -> ());
      Error `No_capacity
    | Some (sw, rest) ->
      let trace =
        Option.map
          (fun ctx ->
            Trace.instant t.tracer ctx
              ~attrs:[ ("switch", string_of_int sw) ]
              "fleet.try")
          root
      in
      if admit_at ?trace t ~sw ~fid app then begin
        Hashtbl.replace t.apps fid app;
        (match client with
        | Some c -> Hashtbl.replace t.clients fid c
        | None -> ());
        let shim = Shim.create ~fid in
        ignore (Shim.transition shim Shim.Request_sent);
        ignore (Shim.transition shim Shim.Response_granted);
        Hashtbl.replace t.shims fid shim;
        bind_placement t ~fid ~sw;
        Telemetry.incr t.tel "fleet.admitted";
        Telemetry.incr t.tel (sw_counter sw "admitted");
        Timeseries.add t.series "fleet.admitted";
        Timeseries.add t.series (sw_counter sw "admitted");
        if tried > 0 then begin
          Telemetry.incr t.tel "fleet.spillover";
          Timeseries.add t.series "fleet.spillover"
        end;
        (match trace with
        | Some ctx ->
          ignore
            (Trace.instant t.tracer ctx
               ~attrs:
                 [
                   ("switch", string_of_int sw);
                   ("spillover", string_of_bool (tried > 0));
                 ]
               "fleet.placed")
        | None -> ());
        Ok sw
      end
      else go (tried + 1) rest
  in
  go 0 candidates

let forget t ~fid =
  Hashtbl.remove t.residency fid;
  Hashtbl.remove t.apps fid;
  Hashtbl.remove t.clients fid;
  Hashtbl.remove t.shims fid;
  match t.tenants with
  | Some reg -> Tenant.unbind reg ~fid
  | None -> ()

(* {2 Batched global admission}

   The epoch-admission path at fleet scope (ROADMAP item 1's remaining
   stretch): services are enqueued globally, then [drain_admissions]
   routes each round's backlog to its best placement candidate and
   drains every touched switch's provision queue through
   [Controller.drain] — one batched table-write session per switch per
   epoch — rather than one synchronous [handle_request] per service.
   Rejected services spill over to the next candidate switch on the
   following round. *)

let tenant_registry t = t.tenants

let pa_charge pa = Array.fold_left ( + ) 0 pa.pa_app.App.demand_blocks

let enqueue_admission t ?client ?tenant ~fid app =
  if Hashtbl.mem t.residency fid then
    invalid_arg
      (Printf.sprintf "Fleet.enqueue_admission: fid %d already placed" fid);
  (match (tenant, t.tenants) with
  | Some tn, Some reg -> Tenant.bind reg ~fid ~tenant:tn
  | Some _, None ->
    invalid_arg "Fleet.enqueue_admission: no tenant registry configured"
  | None, _ -> ());
  Queue.add
    { pa_fid = fid; pa_app = app; pa_client = client; pa_tenant = tenant;
      pa_tried = [] }
    t.admissions;
  Telemetry.incr t.tel "fleet.adm.enqueued"

let admission_queue_depth t = Queue.length t.admissions

let commit_admission t pa ~sw =
  Hashtbl.replace t.apps pa.pa_fid pa.pa_app;
  (match pa.pa_client with
  | Some c -> Hashtbl.replace t.clients pa.pa_fid c
  | None -> ());
  let shim = Shim.create ~fid:pa.pa_fid in
  ignore (Shim.transition shim Shim.Request_sent);
  ignore (Shim.transition shim Shim.Response_granted);
  Hashtbl.replace t.shims pa.pa_fid shim;
  bind_placement t ~fid:pa.pa_fid ~sw;
  (match (pa.pa_tenant, t.tenants) with
  | Some _, Some reg ->
    let stages =
      match
        Allocator.regions_of (Controller.allocator t.nodes.(sw).controller)
          ~fid:pa.pa_fid
      with
      | Some regions -> List.map (fun sr -> sr.Allocator.stage) regions
      | None -> []
    in
    Tenant.charge reg ~fid:pa.pa_fid ~blocks:(pa_charge pa) ~stages
  | _ -> ());
  Telemetry.incr t.tel "fleet.admitted";
  Telemetry.incr t.tel (sw_counter sw "admitted");
  Timeseries.add t.series "fleet.admitted";
  Timeseries.add t.series (sw_counter sw "admitted");
  if pa.pa_tried <> [] then begin
    Telemetry.incr t.tel "fleet.spillover";
    Timeseries.add t.series "fleet.spillover"
  end

let drain_admissions ?(max_batch = 64) t =
  if max_batch <= 0 then
    invalid_arg "Fleet.drain_admissions: max_batch must be positive";
  let outcomes = ref [] in
  let settle pa result =
    (match result with
    | Error _ -> (
      Telemetry.incr t.tel "fleet.rejected";
      Timeseries.add t.series "fleet.rejected";
      match t.tenants with
      | Some reg -> Tenant.unbind reg ~fid:pa.pa_fid
      | None -> ())
    | Ok _ -> ());
    outcomes := (pa.pa_fid, result) :: !outcomes
  in
  let progress = ref true in
  while (not (Queue.is_empty t.admissions)) && !progress do
    progress := false;
    let backlog = List.of_seq (Queue.to_seq t.admissions) in
    Queue.clear t.admissions;
    (* Fleet-global quota gate: a tenant's usage is aggregated across
       every switch in its (shared) registry.  Charges land only after a
       switch admits, so the gate also counts block demand this round has
       already waved through for the tenant — otherwise two services that
       individually fit a quota both pass and the tenant overshoots.
       (Stage demand stays usage-only: pending services may land on
       stages the tenant already occupies.) *)
    let backlog =
      let pending = Hashtbl.create 8 in
      List.filter
        (fun pa ->
          match (pa.pa_tenant, t.tenants) with
          | Some tn, Some reg ->
            let ahead =
              match Hashtbl.find_opt pending tn with Some b -> b | None -> 0
            in
            if
              Tenant.would_exceed reg ~tenant:tn
                ~blocks:(pa_charge pa + ahead)
                ~stages:(Array.length pa.pa_app.App.demand_blocks)
            then begin
              settle pa (Error `Over_quota);
              progress := true;
              false
            end
            else begin
              Hashtbl.replace pending tn (ahead + pa_charge pa);
              true
            end
          | _ -> true)
        backlog
    in
    (* Route each pending service to its next placement candidate.
       Grouping happens entirely before any switch drains, so every
       service in the round sees the same load snapshot. *)
    let round_loads = lazy (loads t) in
    let grouped = Hashtbl.create 8 in
    List.iter
      (fun pa ->
        let home =
          Option.bind pa.pa_client (fun c -> Topology.home_of t.topo ~client:c)
        in
        let next =
          candidate_seq t ~home ~fid:pa.pa_fid ~demand:(pa_charge pa)
            ?loads:
              (match t.policy with
              | Placement.Hierarchical -> None
              | _ -> Some (Lazy.force round_loads))
          |> Seq.filter (fun sw -> not (List.mem sw pa.pa_tried))
          |> Seq.uncons
        in
        match next with
        | None ->
          settle pa (Error `No_capacity);
          progress := true
        | Some (sw, _) ->
          let prev =
            match Hashtbl.find_opt grouped sw with Some l -> l | None -> []
          in
          Hashtbl.replace grouped sw (pa :: prev))
      backlog;
    let switches =
      Hashtbl.fold (fun sw _ acc -> sw :: acc) grouped [] |> List.sort compare
    in
    (* One batched provision-queue drain per touched switch. *)
    List.iter
      (fun sw ->
        let pas = List.rev (Hashtbl.find grouped sw) in
        let ctrl = t.nodes.(sw).controller in
        List.iter
          (fun pa ->
            Controller.enqueue_request ctrl
              (Negotiate.request_packet ~fid:pa.pa_fid ~seq:0 pa.pa_app))
          pas;
        let results =
          Controller.drain ~max_batch ctrl
          |> List.concat_map (fun e -> e.Controller.results)
        in
        (* The provision queue could already hold requests enqueued
           directly on the controller; ours are the tail. *)
        let extra = List.length results - List.length pas in
        let results =
          if extra > 0 then List.filteri (fun i _ -> i >= extra) results
          else results
        in
        Telemetry.incr t.tel "fleet.adm.epochs";
        List.iter2
          (fun pa result ->
            match result with
            | Ok (_ : Controller.provision) ->
              commit_admission t pa ~sw;
              settle pa (Ok sw);
              progress := true
            | Error _ ->
              (* Spill over to the next candidate on a later round.  A
                 spill is progress: pa_tried grows by a switch that was
                 untried this round, so the loop still terminates once
                 every candidate has been exhausted. *)
              pa.pa_tried <- sw :: pa.pa_tried;
              Queue.add pa t.admissions;
              progress := true)
          pas results)
      switches
  done;
  List.sort (fun (a, _) (b, _) -> compare a b) !outcomes

let depart t ~fid =
  match Hashtbl.find_opt t.residency fid with
  | None -> false
  | Some sw ->
    if not t.down.(sw) then
      ignore (Controller.handle_departure t.nodes.(sw).controller ~fid);
    shim_step t ~fid Shim.Released;
    unbind_placement t ~fid ~sw;
    forget t ~fid;
    Telemetry.incr t.tel "fleet.departed";
    true

(* Run a memsync driver to completion directly against a switch's
   tables.  Without faults this is loss-free, so one [start] pass
   answers every index.  With faults each capsule (request and its RTS
   reply, collapsed into one per-delivery decision) may be lost,
   checksum-rejected or duplicated; the driver's timeout/retry loop
   recovers under a synthetic clock, bounded by its per-index attempt
   budget plus a round cap, and the caller falls back to the control
   plane for whatever never got through. *)
let run_memsync node driver =
  let jit = Fabric.jit node.fabric in
  let exec ~seq pkt =
    let meta = Runtime.meta ~src:1 ~dst:0 () in
    let r = Jit.run jit ~meta pkt in
    match r.Runtime.decision with
    | Runtime.Return_to_sender ->
      ignore (Memsync_driver.on_reply driver ~seq ~args:r.Runtime.args_out)
    | Runtime.Forward _ | Runtime.Dropped _ -> ()
  in
  (match node.faults with
  | None -> Memsync_driver.start driver ~now:0.0 ~send:exec
  | Some f ->
    let clock = ref 0.0 in
    let send ~seq pkt =
      let v = Faults.plan f ~now:!clock in
      if not (v.Faults.lose || v.Faults.corrupt) then
        for _ = 1 to v.Faults.copies do
          exec ~seq pkt
        done
    in
    Memsync_driver.start driver ~now:!clock ~send;
    let rounds = ref 0 in
    let stalled = ref false in
    while (not (Memsync_driver.is_done driver)) && (not !stalled) && !rounds < 64
    do
      incr rounds;
      clock := !clock +. 2.0;
      if Memsync_driver.tick driver ~now:!clock ~send = 0 then
        (* Every unacked index is out of retry budget. *)
        stalled := Memsync_driver.outstanding driver > 0
    done);
  Memsync_driver.is_done driver

let make_driver node ~fid ~stages ~count op =
  let max_attempts = match node.faults with None -> 0 | Some _ -> 16 in
  Memsync_driver.create ~max_attempts ~fid ~stages ~count ~timeout_s:1.0 op

let words_per_block node =
  Rmt.Params.words_per_block (Rmt.Device.params (Controller.device node.controller))

(* Drain a service's regions.  [data_plane] selects the normal migration
   path (memsync packets up to the word budget); switch failures force
   the control plane, since a dead switch executes nothing. *)
let extract_state t node ~fid ~data_plane =
  let alloc = Controller.allocator node.controller in
  match Allocator.regions_of alloc ~fid with
  | None -> []
  | Some regions ->
    let wpb = words_per_block node in
    List.map
      (fun { Allocator.stage; range } ->
        let n_words = range.Pool.n_blocks * wpb in
        let control_plane () =
          match Controller.read_region node.controller ~fid ~stage with
          | Some words -> words
          | None -> Array.make n_words 0
        in
        let words =
          if data_plane && n_words <= t.memsync_word_budget then begin
            let driver =
              make_driver node ~fid ~stages:[ stage ] ~count:n_words
                Memsync_driver.Read
            in
            if run_memsync node driver then begin
              Telemetry.incr t.tel "fleet.memsync.words_read" ~by:n_words;
              (Memsync_driver.values driver).(0)
            end
            else begin
              (* Partial data-plane read: keep what got through, fill
                 the gaps from the control plane. *)
              let survivors = Memsync_driver.unacked driver in
              Telemetry.incr t.tel "fleet.memsync.words_read"
                ~by:(n_words - List.length survivors);
              Telemetry.incr t.tel "fleet.memsync.fallback_words"
                ~by:(List.length survivors);
              let words = Array.copy (Memsync_driver.values driver).(0) in
              let cp = control_plane () in
              List.iter
                (fun i -> if i < Array.length cp then words.(i) <- cp.(i))
                survivors;
              words
            end
          end
          else control_plane ()
        in
        (stage, words))
      regions

(* Positional repopulation: k-th captured region into k-th current
   region (both ascending stage), min of the two sizes. *)
let inject_state t node ~fid state =
  let alloc = Controller.allocator node.controller in
  match Allocator.regions_of alloc ~fid with
  | None -> ()
  | Some regions ->
    let wpb = words_per_block node in
    List.iteri
      (fun k { Allocator.stage; range } ->
        match List.nth_opt state k with
        | None -> ()
        | Some (_src_stage, words) ->
          let n_words = range.Pool.n_blocks * wpb in
          let count = min n_words (Array.length words) in
          if count > 0 then
            if count <= t.memsync_word_budget then begin
              let driver =
                make_driver node ~fid ~stages:[ stage ] ~count
                  (Memsync_driver.Write (fun i -> [ words.(i) ]))
              in
              if run_memsync node driver then
                Telemetry.incr t.tel "fleet.memsync.words_written" ~by:count
              else begin
                (* Writes are idempotent, so only the indices that never
                   got through need the control-plane fallback. *)
                let survivors = Memsync_driver.unacked driver in
                Telemetry.incr t.tel "fleet.memsync.words_written"
                  ~by:(count - List.length survivors);
                Telemetry.incr t.tel "fleet.memsync.fallback_words"
                  ~by:(List.length survivors);
                List.iter
                  (fun i ->
                    ignore
                      (Controller.write_region_word node.controller ~fid ~stage
                         ~index:i ~value:words.(i)))
                  survivors
              end
            end
            else
              for i = 0 to count - 1 do
                ignore
                  (Controller.write_region_word node.controller ~fid ~stage
                     ~index:i ~value:words.(i))
              done)
      regions

let read_state t ~fid =
  match Hashtbl.find_opt t.residency fid with
  | None -> []
  | Some sw -> extract_state t t.nodes.(sw) ~fid ~data_plane:(not t.down.(sw))

let write_state t ~fid state =
  match Hashtbl.find_opt t.residency fid with
  | None -> ()
  | Some sw -> inject_state t t.nodes.(sw) ~fid state

let migrate t ~fid ~dst =
  match Hashtbl.find_opt t.residency fid with
  | None -> Error `Unknown_fid
  | Some src ->
    if dst < 0 || dst >= Array.length t.nodes then
      invalid_arg "Fleet.migrate: switch out of range";
    if t.down.(dst) then Error `Switch_down
    else if src = dst then Ok ()
    else
      Telemetry.with_span t.tel "fleet.migrate" @@ fun () ->
      let root =
        Trace.start_trace t.tracer
          ~attrs:
            [
              ("fid", string_of_int fid);
              ("src", string_of_int src);
              ("dst", string_of_int dst);
            ]
          "fleet.migrate"
      in
      let app = Hashtbl.find t.apps fid in
      shim_step t ~fid Shim.Realloc_notified;
      let state =
        Trace.with_span t.tracer root
          ~attrs:[ ("switch", string_of_int src) ]
          "fleet.drain"
        @@ fun _ ->
        extract_state t t.nodes.(src) ~fid ~data_plane:(not t.down.(src))
      in
      if not t.down.(src) then
        ignore (Controller.handle_departure ?trace:root t.nodes.(src).controller ~fid);
      (* The program no longer lives on [src]; drop its compiled closures
         there (the departure's epoch bump already made them stale). *)
      Jit.invalidate (Fabric.jit t.nodes.(src).fabric) ~fid;
      Timeseries.add t.series "fleet.jit.invalidations";
      unbind_placement t ~fid ~sw:src;
      let outcome oc attrs =
        match root with
        | Some ctx -> ignore (Trace.instant t.tracer ctx ~attrs oc)
        | None -> ()
      in
      if admit_at ?trace:root t ~sw:dst ~fid app then begin
        Trace.with_span t.tracer root
          ~attrs:[ ("switch", string_of_int dst) ]
          "fleet.repopulate"
        (fun _ -> inject_state t t.nodes.(dst) ~fid state);
        bind_placement t ~fid ~sw:dst;
        shim_step t ~fid Shim.Extraction_done;
        Telemetry.incr t.tel "fleet.migrated";
        Timeseries.add t.series "fleet.migrated";
        Telemetry.incr t.tel (sw_counter src "out");
        Telemetry.incr t.tel (sw_counter dst "in");
        outcome "fleet.migrated" [ ("switch", string_of_int dst) ];
        Ok ()
      end
      else if (not t.down.(src)) && admit_at ?trace:root t ~sw:src ~fid app
      then begin
        (* Destination refused: restore at the source, state intact. *)
        inject_state t t.nodes.(src) ~fid state;
        bind_placement t ~fid ~sw:src;
        shim_step t ~fid Shim.Extraction_done;
        Telemetry.incr t.tel "fleet.migrate_refused";
        outcome "fleet.migrate_refused" [ ("switch", string_of_int src) ];
        Error `Refused
      end
      else begin
        forget t ~fid;
        Telemetry.incr t.tel "fleet.lost";
            Timeseries.add t.series "fleet.lost";
        outcome "fleet.lost" [];
        Error `Lost
      end

let residents t =
  Hashtbl.fold (fun fid sw acc -> (fid, sw) :: acc) t.residency []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let switch_of t ~fid = Hashtbl.find_opt t.residency fid

let residents_of t ~sw =
  Hashtbl.fold (fun fid s acc -> if s = sw then fid :: acc else acc) t.residency []
  |> List.sort compare

type failover = {
  relocated : (int * Topology.switch_id) list;
  lost : int list;
}

let fail_switch t ~sw =
  if sw < 0 || sw >= Array.length t.nodes then
    invalid_arg "Fleet.fail_switch: switch out of range";
  if t.down.(sw) then { relocated = []; lost = [] }
  else begin
    t.down.(sw) <- true;
    t.up_count <- t.up_count - 1;
    t.up_sum <- t.up_sum -. t.util.(sw);
    (* Routing repairs around the dead switch: all its links go down and
       only the affected destinations of already-built tables recompute. *)
    ignore (Topology.isolate t.topo ~sw);
    Telemetry.set_gauge t.tel (sw_counter sw "up") 0.0;
    Telemetry.incr t.tel "fleet.failures";
    Timeseries.add t.series "fleet.failures";
    let evacuees = residents_of t ~sw in
    let root =
      Trace.start_trace t.tracer
        ~attrs:
          [
            ("switch", string_of_int sw);
            ("residents", string_of_int (List.length evacuees));
          ]
        "fleet.failover"
    in
    (* Snapshot every resident's state from the frozen pool before any
       cleanup: departures trigger elastic expansion among the remaining
       residents, which must not perturb what we recover.  The data
       plane through the dead switch is gone; recovery goes over the
       management network (control plane). *)
    let states =
      List.map
        (fun fid -> (fid, extract_state t t.nodes.(sw) ~fid ~data_plane:false))
        evacuees
    in
    List.iter
      (fun fid ->
        ignore (Controller.handle_departure t.nodes.(sw).controller ~fid);
        unbind_placement t ~fid ~sw)
      evacuees;
    let relocated = ref [] and lost = ref [] in
    List.iter
      (fun (fid, state) ->
        let app = Hashtbl.find t.apps fid in
        let trace =
          Option.map
            (fun ctx ->
              Trace.instant t.tracer ctx
                ~attrs:[ ("fid", string_of_int fid) ]
                "fleet.evacuate")
            root
        in
        let home =
          Option.bind (Hashtbl.find_opt t.clients fid) (fun c ->
              Topology.home_of t.topo ~client:c)
        in
        let app_demand = app_charge app in
        let candidates = candidate_seq t ~home ~fid ~demand:app_demand in
        let rec go seq =
          match Seq.uncons seq with
          | None ->
            forget t ~fid;
            Telemetry.incr t.tel "fleet.lost";
            Timeseries.add t.series "fleet.lost";
            (match trace with
            | Some ctx -> ignore (Trace.instant t.tracer ctx "fleet.lost")
            | None -> ());
            lost := fid :: !lost
          | Some (dst, rest) ->
            if admit_at ?trace t ~sw:dst ~fid app then begin
              inject_state t t.nodes.(dst) ~fid state;
              bind_placement t ~fid ~sw:dst;
              shim_step t ~fid Shim.Realloc_notified;
              shim_step t ~fid Shim.Extraction_done;
              Telemetry.incr t.tel "fleet.migrated";
        Timeseries.add t.series "fleet.migrated";
              Telemetry.incr t.tel (sw_counter sw "out");
              Telemetry.incr t.tel (sw_counter dst "in");
              (match trace with
              | Some ctx ->
                ignore
                  (Trace.instant t.tracer ctx
                     ~attrs:[ ("switch", string_of_int dst) ]
                     "fleet.relocated")
              | None -> ());
              relocated := (fid, dst) :: !relocated
            end
            else go rest
        in
        go candidates)
      states;
    { relocated = List.rev !relocated; lost = List.rev !lost }
  end

let schedule_failure t ~at ~sw =
  Engine.schedule_at t.engine ~time:at (fun () -> ignore (fail_switch t ~sw))
