type switch_id = int

(* One physical bidirectional link.  [up] is the only mutable bit of
   topology state: flapping a link repairs the affected route tables in
   place instead of rebuilding them. *)
type link = {
  la : int;
  lb : int;
  lat : float;
  cap : float option;
  mutable up : bool;
}

(* Per-destination route table: distance from every source plus the
   complete equal-cost first-hop set (ascending, so the deterministic
   single-hop choice is the head). *)
type rt = { dist : float array; hops : int list array }

type t = {
  n : int;
  adj : (int * link) list array;  (* neighbour, shared link record *)
  links : link array;
  link_tbl : (int * int, link) Hashtbl.t;  (* (min, max) endpoint key *)
  routes : rt option array;  (* lazily built, index = destination *)
  pod_ids : int array;
  pods : int;
  homes : (int, switch_id) Hashtbl.t;
  mutable c_sssp_runs : int;
  mutable c_repairs : int;
  mutable c_pairs_touched : int;
  mutable c_flaps : int;
}

type stats = {
  sssp_runs : int;
  repairs : int;
  pairs_touched : int;
  flaps : int;
}

(* Equal-cost detection must survive floating-point sums of mixed link
   latencies.  Infinity compares equal to itself only via the [a = b]
   short-circuit (inf - inf is nan), and the epsilon term applies only
   when both sides are finite — against an infinite distance the
   relative threshold itself is infinite, which would declare any finite
   candidate "equal" to unreachable and rob the insert repair of its
   improvement seed. *)
let approx_eq a b =
  a = b
  || Float.is_finite a && Float.is_finite b
     && Float.abs (a -. b) <= 1e-12 +. (1e-9 *. Float.max (Float.abs a) (Float.abs b))

let approx_lt a b = a < b && not (approx_eq a b)

(* ---------- construction ---------- *)

let key a b = if a < b then (a, b) else (b, a)

let build ~switches ~pod_ids ~pods links =
  if switches < 1 then invalid_arg "Topology.create: need at least one switch";
  let n = switches in
  let tbl = Hashtbl.create (List.length links) in
  List.iter
    (fun (a, b, lat, cap) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Topology.create: link endpoint out of range";
      if a = b then invalid_arg "Topology.create: self-loop";
      if lat <= 0.0 then invalid_arg "Topology.create: latency must be positive";
      (* The cheapest of any parallel edges wins, as before. *)
      match Hashtbl.find_opt tbl (key a b) with
      | Some l when l.lat <= lat -> ()
      | Some _ | None ->
        Hashtbl.replace tbl (key a b) { la = a; lb = b; lat; cap; up = true })
    links;
  let links = Hashtbl.fold (fun _ l acc -> l :: acc) tbl [] in
  let links =
    Array.of_list
      (List.sort (fun l m -> compare (key l.la l.lb) (key m.la m.lb)) links)
  in
  let adj = Array.make n [] in
  Array.iter
    (fun l ->
      adj.(l.la) <- (l.lb, l) :: adj.(l.la);
      adj.(l.lb) <- (l.la, l) :: adj.(l.lb))
    links;
  Array.iteri
    (fun i nbrs ->
      adj.(i) <- List.sort (fun (a, _) (b, _) -> compare a b) nbrs)
    adj;
  {
    n;
    adj;
    links;
    link_tbl = tbl;
    routes = Array.make n None;
    pod_ids;
    pods;
    homes = Hashtbl.create 16;
    c_sssp_runs = 0;
    c_repairs = 0;
    c_pairs_touched = 0;
    c_flaps = 0;
  }

let flat_pods n = (Array.make n 0, 1)

let create ~switches ~links =
  let pod_ids, pods = flat_pods (max switches 1) in
  build ~switches ~pod_ids ~pods
    (List.map (fun (a, b, lat) -> (a, b, lat, None)) links)

let pairs n =
  List.concat (List.init n (fun i -> List.init n (fun j -> (i, j))))
  |> List.filter (fun (i, j) -> i < j)

let full_mesh ~switches ~latency_s =
  create ~switches ~links:(List.map (fun (i, j) -> (i, j, latency_s)) (pairs switches))

let line ~switches ~latency_s =
  create ~switches
    ~links:(List.init (max 0 (switches - 1)) (fun i -> (i, i + 1, latency_s)))

let star ~switches ~latency_s =
  create ~switches
    ~links:(List.init (max 0 (switches - 1)) (fun i -> (0, i + 1, latency_s)))

let fat_tree ?pods ?(latency_s = 5.0e-6) ?(edge_capacity_bps = 10.0e9)
    ?(core_capacity_bps = 40.0e9) ~k () =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Topology.fat_tree: k must be even and >= 2";
  let p = match pods with Some p -> p | None -> k in
  if p < 1 || p > k then invalid_arg "Topology.fat_tree: pods must be in [1, k]";
  let half = k / 2 in
  let n = (p * k) + (half * half) in
  let edge i j = (i * k) + j in
  let agg i m = (i * k) + half + m in
  let core m c = (p * k) + (m * half) + c in
  let links = ref [] in
  for i = 0 to p - 1 do
    for j = 0 to half - 1 do
      for m = 0 to half - 1 do
        links := (edge i j, agg i m, latency_s, Some edge_capacity_bps) :: !links
      done
    done;
    for m = 0 to half - 1 do
      for c = 0 to half - 1 do
        links := (agg i m, core m c, latency_s, Some core_capacity_bps) :: !links
      done
    done
  done;
  let pod_ids = Array.init n (fun sw -> if sw < p * k then sw / k else p) in
  build ~switches:n ~pod_ids ~pods:(p + 1) !links

let leaf_spine ?(pod_size = 16) ?(latency_s = 5.0e-6) ?(capacity_bps = 40.0e9)
    ~leaves ~spines () =
  if leaves < 1 then invalid_arg "Topology.leaf_spine: leaves must be positive";
  if spines < 1 then invalid_arg "Topology.leaf_spine: spines must be positive";
  if pod_size < 1 then invalid_arg "Topology.leaf_spine: pod_size must be positive";
  let n = leaves + spines in
  let links = ref [] in
  for l = 0 to leaves - 1 do
    for s = 0 to spines - 1 do
      links := (l, leaves + s, latency_s, Some capacity_bps) :: !links
    done
  done;
  let leaf_pods = (leaves + pod_size - 1) / pod_size in
  let pod_ids =
    Array.init n (fun sw -> if sw < leaves then sw / pod_size else leaf_pods)
  in
  build ~switches:n ~pod_ids ~pods:(leaf_pods + 1) !links

(* ---------- basic queries ---------- *)

let switches t = t.n
let n_links t = Array.length t.links

let check t name i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Topology.%s: switch out of range" name)

let link_capacity t ~a ~b =
  check t "link_capacity" a;
  check t "link_capacity" b;
  Option.bind (Hashtbl.find_opt t.link_tbl (key a b)) (fun l -> l.cap)

let n_pods t = t.pods

let pod_of t ~sw =
  check t "pod_of" sw;
  t.pod_ids.(sw)

let pod_members t ~pod =
  if pod < 0 || pod >= t.pods then
    invalid_arg "Topology.pod_members: pod out of range";
  let acc = ref [] in
  for sw = t.n - 1 downto 0 do
    if t.pod_ids.(sw) = pod then acc := sw :: !acc
  done;
  !acc

(* ---------- SSSP (full build) ----------

   A small array-backed binary min-heap; n is a few thousand at most, so
   nothing fancier is warranted. *)

module Heap = struct
  type h = { mutable a : (float * int) array; mutable len : int }

  let create () = { a = Array.make 64 (0.0, 0); len = 0 }

  let push h k =
    if h.len = Array.length h.a then begin
      let a' = Array.make (2 * h.len) (0.0, 0) in
      Array.blit h.a 0 a' 0 h.len;
      h.a <- a'
    end;
    h.a.(h.len) <- k;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && fst h.a.((!i - 1) / 2) > fst h.a.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      h.a.(0) <- h.a.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        if l < h.len && fst h.a.(l) < fst h.a.(!s) then s := l;
        if r < h.len && fst h.a.(r) < fst h.a.(!s) then s := r;
        if !s = !i then continue := false
        else begin
          let tmp = h.a.(!s) in
          h.a.(!s) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !s
        end
      done;
      Some top
    end
end

(* The equal-cost first-hop set of [s] toward the destination whose
   distances are [dist]: every up neighbour [h] on a shortest path. *)
let hops_of t dist s =
  if dist.(s) = infinity then []
  else
    List.filter_map
      (fun (h, l) ->
        if l.up && approx_eq dist.(s) (l.lat +. dist.(h)) then Some h else None)
      t.adj.(s)

let build_table t d =
  t.c_sssp_runs <- t.c_sssp_runs + 1;
  let dist = Array.make t.n infinity in
  let settled = Array.make t.n false in
  dist.(d) <- 0.0;
  let heap = Heap.create () in
  Heap.push heap (0.0, d);
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (dx, x) ->
      if not settled.(x) then begin
        settled.(x) <- true;
        List.iter
          (fun (y, l) ->
            if l.up && not settled.(y) then begin
              let cand = dx +. l.lat in
              if cand < dist.(y) then begin
                dist.(y) <- cand;
                Heap.push heap (cand, y)
              end
            end)
          t.adj.(x)
      end;
      drain ()
  in
  drain ();
  let hops = Array.init t.n (fun s -> if s = d then [] else hops_of t dist s) in
  { dist; hops }

let table t d =
  match t.routes.(d) with
  | Some rt -> rt
  | None ->
    let rt = build_table t d in
    t.routes.(d) <- Some rt;
    rt

let build_all_routes t =
  for d = 0 to t.n - 1 do
    ignore (table t d)
  done

let routed_pairs t =
  let built = Array.fold_left (fun acc r -> if r = None then acc else acc + 1) 0 t.routes in
  built * t.n

let stats t =
  {
    sssp_runs = t.c_sssp_runs;
    repairs = t.c_repairs;
    pairs_touched = t.c_pairs_touched;
    flaps = t.c_flaps;
  }

(* ---------- incremental repair ----------

   Ramalingam–Reps-style dynamic SSSP, per cached destination table.

   Deletion: the removed link is on [d]'s shortest-path DAG in at most
   one direction (from the farther endpoint).  Dropping the hop there is
   often the whole repair; only when that empties the endpoint's hop set
   does its distance actually change, and the affected region — every
   source whose paths ALL funnelled through the link — is discovered by
   walking the DAG backwards, then re-settled by a multi-source Dijkstra
   seeded from the unaffected boundary.

   Insertion: at most one endpoint can strictly improve; improvements
   propagate by an ordinary Dijkstra seeded there, and sources adjacent
   to the improved region may gain equal-cost hops without their
   distance moving.  Sources outside the affected/improved region are
   never visited, which is what keeps a flap's cost proportional to the
   damage, not the fleet. *)

let remove_hop hops x ~hop = hops.(x) <- List.filter (fun h -> h <> hop) hops.(x)

let repair_delete t d (rt : rt) l =
  let far, near =
    if Float.is_finite rt.dist.(l.la) && approx_eq rt.dist.(l.la) (l.lat +. rt.dist.(l.lb))
    then (l.la, l.lb)
    else if
      Float.is_finite rt.dist.(l.lb) && approx_eq rt.dist.(l.lb) (l.lat +. rt.dist.(l.la))
    then (l.lb, l.la)
    else (-1, -1)
  in
  if far >= 0 && far <> d then begin
    t.c_repairs <- t.c_repairs + 1;
    remove_hop rt.hops far ~hop:near;
    t.c_pairs_touched <- t.c_pairs_touched + 1;
    if rt.hops.(far) = [] then begin
      (* Affected region: sources whose every shortest path used the
         link.  x joins when its hop set empties. *)
      let affected = Array.make t.n false in
      affected.(far) <- true;
      let stack = ref [ far ] in
      let members = ref [ far ] in
      while !stack <> [] do
        let x = List.hd !stack in
        stack := List.tl !stack;
        List.iter
          (fun (y, m) ->
            if
              m.up && (not affected.(y)) && y <> d
              && Float.is_finite rt.dist.(y)
              && approx_eq rt.dist.(y) (m.lat +. rt.dist.(x))
            then begin
              remove_hop rt.hops y ~hop:x;
              t.c_pairs_touched <- t.c_pairs_touched + 1;
              if rt.hops.(y) = [] then begin
                affected.(y) <- true;
                stack := y :: !stack;
                members := y :: !members
              end
            end)
          t.adj.(x)
      done;
      (* Re-settle the region from its unaffected boundary. *)
      let heap = Heap.create () in
      List.iter
        (fun x ->
          rt.dist.(x) <- infinity;
          List.iter
            (fun (z, m) ->
              if m.up && not affected.(z) then begin
                let cand = m.lat +. rt.dist.(z) in
                if cand < infinity then Heap.push heap (cand, x)
              end)
            t.adj.(x))
        !members;
      let rec drain () =
        match Heap.pop heap with
        | None -> ()
        | Some (dx, x) ->
          if dx < rt.dist.(x) then begin
            rt.dist.(x) <- dx;
            List.iter
              (fun (y, m) ->
                if m.up && affected.(y) then begin
                  let cand = dx +. m.lat in
                  if cand < rt.dist.(y) then Heap.push heap (cand, y)
                end)
              t.adj.(x)
          end;
          drain ()
      in
      drain ();
      List.iter (fun x -> rt.hops.(x) <- hops_of t rt.dist x) !members
    end
  end

let repair_insert t d (rt : rt) l =
  let consider x y =
    (* Path x -> y -> d through the revived link. *)
    if Float.is_finite rt.dist.(y) then begin
      let cand = l.lat +. rt.dist.(y) in
      if approx_lt cand rt.dist.(x) then Some cand
      else begin
        if approx_eq cand rt.dist.(x) && not (List.mem y rt.hops.(x)) then begin
          t.c_repairs <- t.c_repairs + 1;
          rt.hops.(x) <- List.sort compare (y :: rt.hops.(x));
          t.c_pairs_touched <- t.c_pairs_touched + 1
        end;
        None
      end
    end
    else None
  in
  let seed =
    match consider l.la l.lb with
    | Some cand -> Some (l.la, cand)
    | None -> (
      match consider l.lb l.la with
      | Some cand -> Some (l.lb, cand)
      | None -> None)
  in
  match seed with
  | None -> ()
  | Some (x0, cand0) ->
    t.c_repairs <- t.c_repairs + 1;
    let improved = Array.make t.n false in
    let members = ref [] in
    let heap = Heap.create () in
    Heap.push heap (cand0, x0);
    let rec drain () =
      match Heap.pop heap with
      | None -> ()
      | Some (dx, x) ->
        if approx_lt dx rt.dist.(x) then begin
          rt.dist.(x) <- dx;
          if not improved.(x) then begin
            improved.(x) <- true;
            members := x :: !members
          end;
          List.iter
            (fun (y, m) ->
              if m.up && y <> d then begin
                let cand = dx +. m.lat in
                if approx_lt cand rt.dist.(y) then Heap.push heap (cand, y)
              end)
            t.adj.(x)
        end;
        drain ()
    in
    drain ();
    (* Improved sources get fresh hop sets; their unimproved neighbours
       may have gained an equal-cost hop into the improved region. *)
    List.iter
      (fun x ->
        rt.hops.(x) <- hops_of t rt.dist x;
        t.c_pairs_touched <- t.c_pairs_touched + 1)
      !members;
    List.iter
      (fun x ->
        List.iter
          (fun (y, m) ->
            if m.up && (not improved.(y)) && y <> d && Float.is_finite rt.dist.(y)
            then
              if
                approx_eq rt.dist.(y) (m.lat +. rt.dist.(x))
                && not (List.mem x rt.hops.(y))
              then begin
                rt.hops.(y) <- List.sort compare (x :: rt.hops.(y));
                t.c_pairs_touched <- t.c_pairs_touched + 1
              end)
          t.adj.(x))
      !members

let apply_flap t l ~up =
  t.c_flaps <- t.c_flaps + 1;
  l.up <- up;
  (* Only already-built tables need repair; lazy destinations are free. *)
  for d = 0 to t.n - 1 do
    match t.routes.(d) with
    | None -> ()
    | Some rt -> if up then repair_insert t d rt l else repair_delete t d rt l
  done

let set_link t ~a ~b ~up =
  check t "set_link" a;
  check t "set_link" b;
  match Hashtbl.find_opt t.link_tbl (key a b) with
  | None -> false
  | Some l -> if l.up = up then false else (apply_flap t l ~up; true)

let transition_incident t ~sw ~up =
  check t (if up then "restore" else "isolate") sw;
  List.fold_left
    (fun acc (_, l) -> if l.up <> up then (apply_flap t l ~up; acc + 1) else acc)
    0 t.adj.(sw)

let isolate t ~sw = transition_incident t ~sw ~up:false
let restore t ~sw = transition_incident t ~sw ~up:true

(* ---------- routing queries ---------- *)

let connected t ~src ~dst =
  check t "connected" src;
  check t "connected" dst;
  src = dst || (table t dst).dist.(src) < infinity

let latency t ~src ~dst =
  check t "latency" src;
  check t "latency" dst;
  if src = dst then 0.0
  else
    let d = (table t dst).dist.(src) in
    if d = infinity then invalid_arg "Topology.latency: unreachable";
    d

let next_hops t ~src ~dst =
  check t "next_hops" src;
  check t "next_hops" dst;
  if src = dst then [] else (table t dst).hops.(src)

let next_hop t ~src ~dst =
  match next_hops t ~src ~dst with [] -> None | h :: _ -> Some h

(* ---------- Floyd–Warshall oracle ---------- *)

let all_pairs_reference t =
  let n = t.n in
  let dist = Array.init n (fun i -> Array.init n (fun j -> if i = j then 0.0 else infinity)) in
  Array.iter
    (fun l ->
      if l.up && l.lat < dist.(l.la).(l.lb) then begin
        dist.(l.la).(l.lb) <- l.lat;
        dist.(l.lb).(l.la) <- l.lat
      end)
    t.links;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let via = dist.(i).(k) +. dist.(k).(j) in
        if via < dist.(i).(j) then dist.(i).(j) <- via
      done
    done
  done;
  dist

(* ---------- client homing ---------- *)

let home t ~client sw =
  check t "home" sw;
  Hashtbl.replace t.homes client sw

let home_of t ~client = Hashtbl.find_opt t.homes client

let clients t =
  Hashtbl.fold (fun c sw acc -> (c, sw) :: acc) t.homes []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
