type switch_id = int

type t = {
  n : int;
  dist : float array array;  (* all-pairs shortest path latency; infinity
                                when unreachable *)
  hop : int array array;  (* first hop on a shortest path; -1 when none *)
  homes : (int, switch_id) Hashtbl.t;
}

let create ~switches ~links =
  if switches < 1 then invalid_arg "Topology.create: need at least one switch";
  let n = switches in
  let dist = Array.init n (fun i -> Array.init n (fun j -> if i = j then 0.0 else infinity)) in
  let hop = Array.make_matrix n n (-1) in
  List.iter
    (fun (a, b, latency_s) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Topology.create: link endpoint out of range";
      if a = b then invalid_arg "Topology.create: self-loop";
      if latency_s <= 0.0 then invalid_arg "Topology.create: latency must be positive";
      if latency_s < dist.(a).(b) then begin
        dist.(a).(b) <- latency_s;
        dist.(b).(a) <- latency_s;
        hop.(a).(b) <- b;
        hop.(b).(a) <- a
      end)
    links;
  (* Floyd-Warshall, carrying the first hop along with the distance. *)
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let via = dist.(i).(k) +. dist.(k).(j) in
        if via < dist.(i).(j) then begin
          dist.(i).(j) <- via;
          hop.(i).(j) <- hop.(i).(k)
        end
      done
    done
  done;
  { n; dist; hop; homes = Hashtbl.create 16 }

let pairs n =
  List.concat (List.init n (fun i -> List.init n (fun j -> (i, j))))
  |> List.filter (fun (i, j) -> i < j)

let full_mesh ~switches ~latency_s =
  create ~switches ~links:(List.map (fun (i, j) -> (i, j, latency_s)) (pairs switches))

let line ~switches ~latency_s =
  create ~switches
    ~links:(List.init (max 0 (switches - 1)) (fun i -> (i, i + 1, latency_s)))

let star ~switches ~latency_s =
  create ~switches
    ~links:(List.init (max 0 (switches - 1)) (fun i -> (0, i + 1, latency_s)))

let switches t = t.n

let check t name i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Topology.%s: switch out of range" name)

let connected t ~src ~dst =
  check t "connected" src;
  check t "connected" dst;
  t.dist.(src).(dst) < infinity

let latency t ~src ~dst =
  check t "latency" src;
  check t "latency" dst;
  let d = t.dist.(src).(dst) in
  if d = infinity then invalid_arg "Topology.latency: unreachable";
  d

let next_hop t ~src ~dst =
  check t "next_hop" src;
  check t "next_hop" dst;
  if src = dst || t.hop.(src).(dst) < 0 then None else Some t.hop.(src).(dst)

let home t ~client sw =
  check t "home" sw;
  Hashtbl.replace t.homes client sw

let home_of t ~client = Hashtbl.find_opt t.homes client

let clients t =
  Hashtbl.fold (fun c sw acc -> (c, sw) :: acc) t.homes []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
