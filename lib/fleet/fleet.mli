open Import

(** A fleet of runtime-programmable switches under one global placement
    layer.

    Each switch in the {!Topology} gets its own device, controller and
    allocator, plus a {!Netsim.Fabric} instance addressed by its switch
    id; all fabrics share one discrete-event engine, and traffic whose
    destination lives behind another switch is bridged hop-by-hop along
    shortest paths — maintained by the topology's incremental ECMP
    router, so link flaps and switch failures repair routes in place
    (each inter-switch hop adds the link latency, and every transit
    switch runs its own pipeline over the packet — a service's programs
    only execute where its FID's tables are installed).

    Admission is global: the fleet snapshots every switch's pool,
    ranks switches with the configured {!Placement.policy}, and tries
    them in order until one's allocator admits (spill-over).  Under
    {!Placement.Hierarchical} on a podded topology (fat-tree or
    leaf-spine) the candidate stream is lazy and pod-local — the home
    pod's switches first-fit, spilling to remote pods round-robin —
    so per-arrival placement cost stays sub-linear in fleet size.
    Services
    can later be migrated between switches — their switch memory is
    drained with the memsync read protocol, the source allocation
    released, and the state repopulated into the new placement — and a
    switch failure re-places every resident service the same way. *)

type t

val create :
  ?policy:Placement.policy ->
  ?scheme:Allocator.scheme ->
  ?params:Rmt.Params.t ->
  ?wire_latency_s:float ->
  ?memsync_word_budget:int ->
  ?faults:Netsim.Faults.profile ->
  ?faults_seed:int ->
  ?jit:bool ->
  ?tenants:Tenant.t ->
  ?telemetry:Telemetry.t ->
  ?series:Timeseries.t ->
  ?tracer:Trace.t ->
  Topology.t ->
  t
(** Defaults: [Least_loaded] placement, the allocator's default scheme,
    [Rmt.Params.default] per switch.

    [memsync_word_budget] (default 4096) bounds how many words per stage
    migration drains through data-plane memsync packets; larger regions
    fall back to control-plane (BFRT-style) reads/writes, mirroring how
    an operator would bulk-transfer via the management network.

    [jit] (default enabled) is forwarded to every switch's
    {!Netsim.Fabric.create}: each node runs admitted programs through its
    own {!Activermt.Jit} tier (memsync drains included).  Migration
    invalidates the FID's compiled closures on the source switch.

    [faults] (default none) applies the fault profile to every switch:
    each node gets its own {!Netsim.Faults} instance (decorrelated
    per-switch PRNG streams derived from [faults_seed], default
    [0xF1EE7]) wired into its fabric, and — when the profile slows table
    updates — a correspondingly degraded cost model.  Migration's
    memsync drain/repopulate then runs under loss: drivers get a
    16-attempt budget with timeouts, and indices that exhaust it fall
    back to control-plane reads/writes
    ([fleet.memsync.fallback_words]), so a service is never lost or
    double-placed to capsule loss alone.  Passing a profile for which
    [Faults.is_none] holds is exactly equivalent to omitting it
    (bit-identical runs).  A node's handle is reachable via
    [Netsim.Fabric.faults (Fleet.fabric t ~sw)].

    [telemetry] (default {!Telemetry.default}) receives fleet counters
    ([fleet.admitted], [fleet.rejected], [fleet.spillover],
    [fleet.migrated], [fleet.lost], [fleet.failures], [fleet.bridged],
    [fleet.unroutable], per-switch [fleet.sw.<i>.admitted/in/out]),
    spans ([fleet.place], [fleet.migrate]) and occupancy gauges
    ([fleet.occupancy], [fleet.sw.<i>.utilization],
    [fleet.sw.<i>.up]).

    [series] (default {!Timeseries.noop}) receives the same admission
    outcomes as windowed time series bucketed on the registry's virtual
    clock — [fleet.admitted], [fleet.rejected], [fleet.spillover],
    [fleet.migrated], [fleet.lost], [fleet.failures],
    [fleet.jit.invalidations] and per-switch [fleet.sw.<i>.admitted] —
    and is shared with every switch's controller and allocator
    ([control.provisions/rejections], [control.queue_depth],
    [alloc.admitted/rejected]).  The health plane ({!Activermt_health})
    evaluates SLOs and watchdogs over these series.

    [tracer] (default {!Trace.noop}) is shared with every switch's
    controller and fabric, and its clock is wired to the fleet engine so
    trace time is simulated time.  Capsules injected via {!inject} are
    head-sampled once; their traces then follow the capsule across
    bridges ([fleet.bridge] events name each inter-switch [link]).
    Fleet-level operations start their own traces: [fleet.admit] (with
    [fleet.try]/[fleet.placed]/[fleet.rejected] children hanging the
    [control.provision] span of each attempt), [fleet.migrate] (with
    [fleet.drain]/[fleet.repopulate] spans and a terminal
    [fleet.migrated]/[fleet.migrate_refused]/[fleet.lost] event) and
    [fleet.failover] (per-evacuee [fleet.evacuate] →
    [fleet.relocated]/[fleet.lost]). *)

(** {1 Structure} *)

val n_switches : t -> int
val topology : t -> Topology.t
val policy : t -> Placement.policy
val engine : t -> Engine.t

val tracer : t -> Trace.t
(** The tracer passed at {!create} ({!Trace.noop} by default). *)

val controller : t -> sw:Topology.switch_id -> Controller.t
val fabric : t -> sw:Topology.switch_id -> Fabric.t
val is_up : t -> sw:Topology.switch_id -> bool

val loads : t -> Placement.load list
(** Current per-switch pool snapshot, ascending switch id. *)

(** {1 Clients} *)

val attach_client :
  t -> client:Fabric.address -> home:Topology.switch_id -> (Fabric.msg -> unit) -> unit
(** Home a client on an edge switch: its handler attaches to the home
    fabric and every other fabric learns to bridge traffic for the
    address toward home.  Client addresses must not collide with switch
    ids (use addresses >= [n_switches]). *)

val inject : t -> client:Fabric.address -> Fabric.msg -> unit
(** Send a message from a client into its home switch.
    @raise Invalid_argument if the client was never attached. *)

(** {1 Placement} *)

val admit :
  t ->
  ?client:Fabric.address ->
  fid:int ->
  App.t ->
  (Topology.switch_id, [ `No_capacity ]) result
(** Place a service: rank the up switches under the fleet policy
    ([client]'s home anchors [Locality]; under [Hierarchical] the home's
    pod leads, and an unhomed service starts from pod [fid mod n_pods]
    so anonymous arrivals spread deterministically) and admit at the
    first switch whose allocator accepts.  On success the service's
    tables are installed there and its shim is operational.  Note that
    [client] must already be homed ({!attach_client} or
    {!Topology.home}) for locality to apply — [admit] does not home it.
    @raise Invalid_argument if the FID is already placed. *)

val depart : t -> fid:int -> bool
(** Release the service's allocation at its switch; false if unknown. *)

(** {1 Batched global admission}

    The epoch-admission path at fleet scope: enqueue services globally,
    then drain each round's backlog through every touched switch's
    provision queue ({!Controller.enqueue_request} /
    {!Controller.drain}) — one batched table-write session per switch
    per round instead of a synchronous
    {!Controller.handle_request} per service.  Services a switch rejects
    spill over to the next placement candidate on the following round.

    When the fleet was created with a [tenants] registry (shared across
    switches, so usage aggregates fleet-wide), admissions submitted with
    a tenant id are charged against it and gated by its {e global}
    quota. *)

val tenant_registry : t -> Tenant.t option
(** The registry passed at {!create}, if any. *)

val enqueue_admission :
  t -> ?client:Fabric.address -> ?tenant:int -> fid:int -> App.t -> unit
(** Queue a service for the next {!drain_admissions}.  Constant-time.
    With [tenant], the FID is bound in the fleet's registry (and later
    charged on admission).
    @raise Invalid_argument if the FID is already placed, or [tenant]
    was given but the fleet has no registry. *)

val admission_queue_depth : t -> int

val drain_admissions :
  ?max_batch:int ->
  t ->
  (int * (Topology.switch_id, [ `No_capacity | `Over_quota ]) result) list
(** Admit the whole global backlog: per round, every pending service is
    routed to its best untried placement candidate, each touched
    switch's provision queue drains in epochs of up to [max_batch]
    (default 64), and rejected services retry elsewhere next round.
    Returns one outcome per enqueued FID, ascending: the placed switch,
    [`No_capacity] once every up switch rejected it, or [`Over_quota]
    when the tenant's fleet-global quota blocked it.  Successful
    placements get the same bookkeeping as {!admit} (shim, client
    homing, occupancy, [fleet.admitted]); counters
    [fleet.adm.enqueued]/[fleet.adm.epochs] cover the queue itself. *)

val migrate :
  t ->
  fid:int ->
  dst:Topology.switch_id ->
  (unit, [ `Unknown_fid | `Switch_down | `Refused | `Lost ]) result
(** Drain the service's state (memsync within the word budget, control
    plane beyond it), release it at its current switch, re-admit it at
    [dst] and repopulate.  [`Refused]: [dst]'s allocator rejected and
    the service was restored at its source, state intact.  [`Lost]: the
    source re-admission also failed (its freed space was consumed by
    elastic expansion) and the service is gone. *)

(** {1 Failure} *)

type failover = {
  relocated : (int * Topology.switch_id) list;  (** fid, new switch *)
  lost : int list;  (** fids no surviving switch could hold *)
}

val fail_switch : t -> sw:Topology.switch_id -> failover
(** Take the switch down and re-place every resident service on the
    survivors (state recovered over the management network, i.e. the
    control plane — the data plane through a dead switch is gone).
    Idempotent: failing a down switch relocates nothing. *)

val schedule_failure : t -> at:float -> sw:Topology.switch_id -> unit
(** Inject the failure as a simulation event at absolute time [at]. *)

(** {1 Residency} *)

val residents : t -> (int * Topology.switch_id) list
(** All placed services as (fid, switch), ascending fid. *)

val switch_of : t -> fid:int -> Topology.switch_id option
val residents_of : t -> sw:Topology.switch_id -> int list

(** {1 Service state (for tests and tooling)} *)

val read_state : t -> fid:int -> (int * int array) list
(** The service's switch-memory contents, one (stage, words) per
    allocated region, ascending stage — drained exactly as migration
    does (memsync under the budget, control plane over it). *)

val write_state : t -> fid:int -> (int * int array) list -> unit
(** Repopulate the service's regions positionally: the k-th pair fills
    the k-th current region (stages in the pairs are informational —
    a migrated placement uses different stages).  Each region takes
    [min region_words (Array.length words)] words. *)
