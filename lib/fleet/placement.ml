type policy = First_fit_switch | Least_loaded | Locality | Hierarchical

let policy_to_string = function
  | First_fit_switch -> "first-fit"
  | Least_loaded -> "least-loaded"
  | Locality -> "locality"
  | Hierarchical -> "hierarchical"

let policy_of_string = function
  | "first-fit" | "first_fit" -> Ok First_fit_switch
  | "least-loaded" | "least_loaded" -> Ok Least_loaded
  | "locality" -> Ok Locality
  | "hierarchical" -> Ok Hierarchical
  | s -> Error (Printf.sprintf "unknown placement policy %S" s)

let all_policies = [ First_fit_switch; Least_loaded; Locality; Hierarchical ]

type load = {
  switch : Topology.switch_id;
  utilization : float;
  residents : int;
  up : bool;
}

let least_loaded_key l = (l.utilization, l.residents, l.switch)

(* Pod rank for [Hierarchical]: home pod first, then pods by ascending
   mean utilization (of their up switches), tie-broken by pod id.  Mean
   utilization is order-independent, so the ranking stays a pure
   function of the load multiset. *)
let hierarchical ~pod_of ~n_pods ~home up =
  let home_pod = Option.map pod_of home in
  let sum = Array.make n_pods 0.0 and cnt = Array.make n_pods 0 in
  List.iter
    (fun l ->
      let p = pod_of l.switch in
      if p >= 0 && p < n_pods then begin
        sum.(p) <- sum.(p) +. l.utilization;
        cnt.(p) <- cnt.(p) + 1
      end)
    up;
  let pod_key p =
    let mean = if cnt.(p) = 0 then infinity else sum.(p) /. float_of_int cnt.(p) in
    let is_home = match home_pod with Some h -> h = p | None -> false in
    ((if is_home then 0 else 1), mean, p)
  in
  List.sort
    (fun a b ->
      let pa = pod_of a.switch and pb = pod_of b.switch in
      if pa = pb then compare a.switch b.switch
      else compare (pod_key pa) (pod_key pb))
    up

let order ?pods policy ~home loads =
  let up = List.filter (fun l -> l.up) loads in
  let ranked =
    match policy with
    | First_fit_switch -> List.sort (fun a b -> compare a.switch b.switch) up
    | Least_loaded ->
      List.sort (fun a b -> compare (least_loaded_key a) (least_loaded_key b)) up
    | Locality ->
      let is_home l = match home with Some h -> l.switch = h | None -> false in
      let home_first, rest = List.partition is_home up in
      home_first
      @ List.sort (fun a b -> compare (least_loaded_key a) (least_loaded_key b)) rest
    | Hierarchical -> (
      match pods with
      | Some (pod_of, n_pods) when n_pods > 1 -> hierarchical ~pod_of ~n_pods ~home up
      | Some _ | None ->
        (* Flat fleet (or no pod metadata): degrade to first-fit. *)
        List.sort (fun a b -> compare a.switch b.switch) up)
  in
  List.map (fun l -> l.switch) ranked
