type policy = First_fit_switch | Least_loaded | Locality

let policy_to_string = function
  | First_fit_switch -> "first-fit"
  | Least_loaded -> "least-loaded"
  | Locality -> "locality"

let policy_of_string = function
  | "first-fit" | "first_fit" -> Ok First_fit_switch
  | "least-loaded" | "least_loaded" -> Ok Least_loaded
  | "locality" -> Ok Locality
  | s -> Error (Printf.sprintf "unknown placement policy %S" s)

let all_policies = [ First_fit_switch; Least_loaded; Locality ]

type load = {
  switch : Topology.switch_id;
  utilization : float;
  residents : int;
  up : bool;
}

let least_loaded_key l = (l.utilization, l.residents, l.switch)

let order policy ~home loads =
  let up = List.filter (fun l -> l.up) loads in
  let ranked =
    match policy with
    | First_fit_switch -> List.sort (fun a b -> compare a.switch b.switch) up
    | Least_loaded ->
      List.sort (fun a b -> compare (least_loaded_key a) (least_loaded_key b)) up
    | Locality ->
      let is_home l = match home with Some h -> l.switch = h | None -> false in
      let home_first, rest = List.partition is_home up in
      home_first
      @ List.sort (fun a b -> compare (least_loaded_key a) (least_loaded_key b)) rest
  in
  List.map (fun l -> l.switch) ranked
