(** Multi-switch topology: runtime-programmable switches joined by
    latency-weighted, capacity-annotated links, with clients homed to
    edge switches.

    Switches are numbered [0 .. switches - 1].  Routing is {e
    incremental ECMP-aware SSSP}: a per-destination route table
    (distance from every source plus the full equal-cost first-hop set)
    is built lazily by one Dijkstra run the first time that destination
    is queried, and a link flap or switch failure repairs only the
    affected (source, destination) pairs of already-built tables
    (Ramalingam–Reps-style delete/insert repair) instead of recomputing
    an all-pairs matrix.  {!all_pairs_reference} keeps the old
    Floyd–Warshall router as an oracle for equivalence checks.

    Datacenter constructors ({!fat_tree}, {!leaf_spine}) additionally
    carry pod membership, which the fleet's hierarchical placement uses
    to keep placement cost sub-linear in fleet size.  Client homes let
    the fleet's {!Placement.Locality} policy and its fabric bridging
    know which switch a client hangs off. *)

type switch_id = int

type t

val create : switches:int -> links:(switch_id * switch_id * float) list -> t
(** [links] are bidirectional [(a, b, latency_s)] edges.
    @raise Invalid_argument on [switches < 1], endpoints out of range,
    self-loops, or non-positive latencies. *)

val full_mesh : switches:int -> latency_s:float -> t
(** Every pair of switches joined directly at [latency_s]. *)

val line : switches:int -> latency_s:float -> t
(** A chain [0 - 1 - ... - n-1], each hop at [latency_s]. *)

val star : switches:int -> latency_s:float -> t
(** Switch 0 as hub, every other switch a spoke at [latency_s]. *)

val fat_tree :
  ?pods:int ->
  ?latency_s:float ->
  ?edge_capacity_bps:float ->
  ?core_capacity_bps:float ->
  k:int ->
  unit ->
  t
(** A [k]-ary fat-tree (k even, >= 2): [pods] pods (default [k], may be
    fewer for a partially built fabric) of [k/2] edge and [k/2]
    aggregation switches each, plus [(k/2)^2] core switches.  Pod [i]'s
    edge switches are [i*k .. i*k + k/2 - 1], its aggregation switches
    [i*k + k/2 .. i*k + k - 1]; cores follow at [pods*k ..].
    Aggregation switch [j] of every pod uplinks to cores
    [j*(k/2) .. (j+1)*(k/2) - 1], giving [(k/2)^2] equal-cost paths
    between edge switches of different pods.  Edge-aggregation links
    carry [edge_capacity_bps] (default 10e9), aggregation-core links
    [core_capacity_bps] (default 40e9); every hop costs [latency_s]
    (default 5e-6).  Pod ids: [0 .. pods - 1] for the server pods, pod
    [pods] for the core layer.
    @raise Invalid_argument on odd or non-positive [k], or [pods]
    outside [1, k]. *)

val leaf_spine :
  ?pod_size:int ->
  ?latency_s:float ->
  ?capacity_bps:float ->
  leaves:int ->
  spines:int ->
  unit ->
  t
(** A 2-tier leaf–spine fabric: leaves [0 .. leaves - 1], spines
    [leaves .. leaves + spines - 1], every leaf linked to every spine at
    [latency_s] (default 5e-6) and [capacity_bps] (default 40e9) — so
    leaf-to-leaf traffic has [spines] equal-cost 2-hop paths.  Leaves
    are grouped into placement pods of [pod_size] (default 16)
    consecutive ids; the spine layer is the final pod.
    @raise Invalid_argument on non-positive [leaves], [spines], or
    [pod_size]. *)

val switches : t -> int

val n_links : t -> int
(** Physical links, up or down. *)

val connected : t -> src:switch_id -> dst:switch_id -> bool

val latency : t -> src:switch_id -> dst:switch_id -> float
(** Shortest-path latency; 0 for [src = dst].
    @raise Invalid_argument if unreachable or out of range. *)

val next_hop : t -> src:switch_id -> dst:switch_id -> switch_id option
(** First switch on a shortest [src -> dst] path ([dst] itself when
    adjacent); [None] when unreachable or [src = dst].  With several
    equal-cost first hops this returns the lowest-numbered one, so
    replays stay deterministic. *)

val next_hops : t -> src:switch_id -> dst:switch_id -> switch_id list
(** The complete equal-cost first-hop set, ascending; [] when
    unreachable or [src = dst]. *)

val link_capacity : t -> a:switch_id -> b:switch_id -> float option
(** Capacity metadata of the direct link [a - b] (bps); [None] when no
    such link exists.  Links created via plain {!create} carry no
    capacity annotation and report [None]. *)

(** {1 Dynamic link state}

    Links flap; switches fail.  Each transition repairs only the routes
    it invalidates: already-built destination tables whose shortest-path
    DAG used (or now gains) the link get a bounded repair, everything
    else is untouched, and destinations never queried cost nothing. *)

val set_link : t -> a:switch_id -> b:switch_id -> up:bool -> bool
(** Take the direct link [a - b] down or bring it back up.  Returns
    false (and does nothing) when no such link exists or it already was
    in the requested state. *)

val isolate : t -> sw:switch_id -> int
(** Take every incident link of [sw] down (a switch failure as the
    routing layer sees it).  Returns the number of links transitioned. *)

val restore : t -> sw:switch_id -> int
(** Bring every incident link of [sw] back up; returns transitions. *)

(** {1 Pods} *)

val n_pods : t -> int
(** Placement pods.  1 for {!create}/{!full_mesh}/{!line}/{!star}
    topologies (flat fleets degrade hierarchical placement to
    first-fit), [pods + 1] for {!fat_tree} (the core layer is the last
    pod), [ceil(leaves / pod_size) + 1] for {!leaf_spine}. *)

val pod_of : t -> sw:switch_id -> int
(** The pod the switch belongs to. *)

val pod_members : t -> pod:int -> switch_id list
(** Ascending switch ids of one pod.
    @raise Invalid_argument when [pod] is out of range. *)

(** {1 Routing internals (stats and oracle)} *)

type stats = {
  sssp_runs : int;  (** full per-destination Dijkstra builds *)
  repairs : int;  (** incremental per-destination repairs after a flap *)
  pairs_touched : int;
      (** (source, destination) route entries recomputed or whose
          first-hop set changed across all flaps so far *)
  flaps : int;  (** link state transitions applied *)
}

val stats : t -> stats

val routed_pairs : t -> int
(** [switches * built_tables]: the route entries currently materialized
    — the denominator for a "fraction of pairs touched by this flap"
    gate. *)

val build_all_routes : t -> unit
(** Force every destination's table (for benchmarks that want flap
    costs isolated from lazy build costs). *)

val all_pairs_reference : t -> float array array
(** The previous router: one Floyd–Warshall sweep over the current up
    links, returning the all-pairs distance matrix ([infinity] when
    unreachable).  O(n^3) — kept as the equivalence oracle for the
    incremental router, not used on any hot path. *)

(** {1 Client homing} *)

val home : t -> client:int -> switch_id -> unit
(** Record that [client] (a fabric address) hangs off the given edge
    switch.  Re-homing replaces the previous entry.
    @raise Invalid_argument if the switch is out of range. *)

val home_of : t -> client:int -> switch_id option

val clients : t -> (int * switch_id) list
(** All homed clients, sorted by client address. *)
