(** Multi-switch topology: runtime-programmable switches joined by
    latency-weighted links, with clients homed to edge switches.

    Switches are numbered [0 .. switches - 1].  All-pairs shortest paths
    (by cumulative link latency) and first hops are computed at
    construction, so routing queries are O(1).  Client homes let the
    fleet's {!Placement.Locality} policy and its fabric bridging know
    which switch a client hangs off. *)

type switch_id = int

type t

val create : switches:int -> links:(switch_id * switch_id * float) list -> t
(** [links] are bidirectional [(a, b, latency_s)] edges.
    @raise Invalid_argument on [switches < 1], endpoints out of range,
    self-loops, or non-positive latencies. *)

val full_mesh : switches:int -> latency_s:float -> t
(** Every pair of switches joined directly at [latency_s]. *)

val line : switches:int -> latency_s:float -> t
(** A chain [0 - 1 - ... - n-1], each hop at [latency_s]. *)

val star : switches:int -> latency_s:float -> t
(** Switch 0 as hub, every other switch a spoke at [latency_s]. *)

val switches : t -> int

val connected : t -> src:switch_id -> dst:switch_id -> bool

val latency : t -> src:switch_id -> dst:switch_id -> float
(** Shortest-path latency; 0 for [src = dst].
    @raise Invalid_argument if unreachable or out of range. *)

val next_hop : t -> src:switch_id -> dst:switch_id -> switch_id option
(** First switch on a shortest [src -> dst] path ([dst] itself when
    adjacent); [None] when unreachable or [src = dst]. *)

val home : t -> client:int -> switch_id -> unit
(** Record that [client] (a fabric address) hangs off the given edge
    switch.  Re-homing replaces the previous entry.
    @raise Invalid_argument if the switch is out of range. *)

val home_of : t -> client:int -> switch_id option

val clients : t -> (int * switch_id) list
(** All homed clients, sorted by client address. *)
