(** Global placement: which switch should host an arriving service.

    Pure ranking over per-switch pool snapshots.  The fleet tries
    switches in the returned order and admits at the first whose
    allocator accepts (spill-over); a service every switch rejects is
    rejected fleet-wide. *)

type policy =
  | First_fit_switch  (** lowest switch id first — packs early switches *)
  | Least_loaded  (** ascending pool utilization, residents, id *)
  | Locality
      (** the client's home switch first (when up), then least-loaded —
          keeps service traffic off inter-switch links when possible *)
  | Hierarchical
      (** pod-local first: the home pod's switches first-fit, then
          remaining pods by ascending mean utilization (spill), each pod
          first-fit by switch id.  Needs the [?pods] argument of
          {!order}; degrades to [First_fit_switch] on flat fleets.  The
          fleet feeds this a lazily generated pod-at-a-time candidate
          stream so placement cost stays sub-linear in fleet size. *)

val policy_to_string : policy -> string
val policy_of_string : string -> (policy, string) result
val all_policies : policy list

type load = {
  switch : Topology.switch_id;
  utilization : float;  (** allocated blocks / total blocks *)
  residents : int;
  up : bool;
}

val order :
  ?pods:(Topology.switch_id -> int) * int ->
  policy ->
  home:Topology.switch_id option ->
  load list ->
  Topology.switch_id list
(** Switches to try, best first.  Down switches are excluded.  The result
    depends only on the load values, never on the input ordering: ties
    break by ascending switch id.  [pods] = [(pod_of, n_pods)] supplies
    pod membership for [Hierarchical]; other policies ignore it. *)
