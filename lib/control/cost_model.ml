type t = {
  table_entry_update_s : float;
  app_install_s : float;
  snapshot_word_s : float;
  notify_rtt_s : float;
  digest_s : float;
  batch_setup_s : float;
  batched_entry_update_s : float;
}

let default =
  {
    table_entry_update_s = 2.5e-4;
    app_install_s = 2.0e-2;
    snapshot_word_s = 1.0e-7;
    notify_rtt_s = 2.0e-4;
    digest_s = 1.0e-4;
    (* RBFRT-style batched writes: one session/flush per batch at roughly
       an app-install's cost, then each entry rides the batch at ~25x less
       than a serial per-entry update. *)
    batch_setup_s = 2.0e-2;
    batched_entry_update_s = 1.0e-5;
  }

let p4_compile_s = 28.79
let p4_reprovision_blackout_s = 0.05

let degrade t ~slowdown =
  if slowdown < 1.0 then invalid_arg "Cost_model.degrade: slowdown must be >= 1";
  {
    t with
    table_entry_update_s = t.table_entry_update_s *. slowdown;
    app_install_s = t.app_install_s *. slowdown;
    batch_setup_s = t.batch_setup_s *. slowdown;
    batched_entry_update_s = t.batched_entry_update_s *. slowdown;
  }

type breakdown = {
  allocation_s : float;
  table_update_s : float;
  snapshot_s : float;
  notify_s : float;
}

let total b = b.allocation_s +. b.table_update_s +. b.snapshot_s +. b.notify_s

let breakdown t ~allocation_s ~entries_updated ~apps_touched ~words_snapshotted ~notifications =
  {
    allocation_s;
    table_update_s =
      (float_of_int entries_updated *. t.table_entry_update_s)
      +. (float_of_int apps_touched *. t.app_install_s);
    snapshot_s = float_of_int words_snapshotted *. t.snapshot_word_s;
    notify_s = t.digest_s +. (float_of_int notifications *. t.notify_rtt_s);
  }

let breakdown_batched t ~allocation_s ~entries_updated ~words_snapshotted ~notifications =
  {
    allocation_s;
    table_update_s =
      t.batch_setup_s
      +. (float_of_int entries_updated *. t.batched_entry_update_s);
    snapshot_s = float_of_int words_snapshotted *. t.snapshot_word_s;
    (* The async provision queue overlaps client notification round trips
       with the next epoch's scoring, so an epoch pays one digest and (at
       most) one RTT of un-overlapped latency regardless of how many
       clients it notifies. *)
    notify_s =
      t.digest_s +. (if notifications > 0 then t.notify_rtt_s else 0.0);
  }
