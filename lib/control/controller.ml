open Import

type commit_mode = [ `Auto | `Interactive ]

type provision_phase =
  | Committed
  | Awaiting_extraction of { impacted : Activermt.Packet.fid list }

type provision = {
  fid : Activermt.Packet.fid;
  response : Activermt.Packet.t;
  reallocated : Activermt.Packet.fid list;
  phase : provision_phase;
  timing : Cost_model.breakdown;
}

type pending = {
  new_fid : Activermt.Packet.fid;
  mutable waiting : Activermt.Packet.fid list;
  mutable deadline_s : float;
}

type t = {
  device : Rmt.Device.t;
  tables : Activermt.Table.t;
  allocator : Allocator.t;
  cost : Cost_model.t;
  mode : commit_mode;
  extraction_timeout_s : float;
  snapshots : (Activermt.Packet.fid, (int * Pool.range * int array) list) Hashtbl.t;
  virtual_flags : (Activermt.Packet.fid, bool) Hashtbl.t;
  privileged : (Activermt.Packet.fid, unit) Hashtbl.t;
  pass_limits : (Activermt.Packet.fid, int) Hashtbl.t;
  mutable pending : pending option;
  mutable log : Cost_model.breakdown list;
  tel : Telemetry.t;
  tracer : Trace.t;
  admit_traces : (Activermt.Packet.fid, Trace.ctx) Hashtbl.t;
      (* the control.provision span that admitted each resident FID, so
         data-plane execution events can link back to it *)
}

let create ?scheme ?policy ?(cost = Cost_model.default) ?(mode = `Auto)
    ?(extraction_timeout_s = 1.0) ?(telemetry = Telemetry.default)
    ?(tracer = Trace.noop) device =
  {
    device;
    tables = Activermt.Table.create device;
    allocator =
      Allocator.create ?scheme ?policy ~telemetry ~tracer
        (Rmt.Device.params device);
    cost;
    mode;
    extraction_timeout_s;
    tel = telemetry;
    tracer;
    admit_traces = Hashtbl.create 32;
    snapshots = Hashtbl.create 32;
    virtual_flags = Hashtbl.create 32;
    privileged = Hashtbl.create 8;
    pass_limits = Hashtbl.create 8;
    pending = None;
    log = [];
  }

let tables t = t.tables
let allocator t = t.allocator
let device t = t.device

let words_per_block t = Rmt.Params.words_per_block (Rmt.Device.params t.device)

let take_snapshot t ~fid =
  match Activermt.Table.regions_of t.tables ~fid with
  | None -> 0
  | Some regions ->
    let wpb = words_per_block t in
    let snaps = ref [] in
    let words = ref 0 in
    Array.iteri
      (fun stage reg ->
        match reg with
        | None -> ()
        | Some { Activermt.Packet.start_word; n_words } ->
          let st = Rmt.Device.stage t.device stage in
          let data =
            Rmt.Register_array.snapshot_range st.Rmt.Device.regs ~lo:start_word
              ~hi:(start_word + n_words - 1)
          in
          words := !words + n_words;
          snaps :=
            ( stage,
              { Pool.first_block = start_word / wpb; n_blocks = n_words / wpb },
              data )
            :: !snaps)
      regions;
    Hashtbl.replace t.snapshots fid (List.rev !snaps);
    !words

let zero_regions t ~fid =
  match Activermt.Table.regions_of t.tables ~fid with
  | None -> ()
  | Some regions ->
    Array.iteri
      (fun stage reg ->
        match reg with
        | None -> ()
        | Some { Activermt.Packet.start_word; n_words } ->
          let st = Rmt.Device.stage t.device stage in
          Rmt.Register_array.zero_range st.Rmt.Device.regs ~lo:start_word
            ~hi:(start_word + n_words - 1))
      regions

(* Install (or re-install) an app's tables from the allocator's current
   placement.  The allocator's TCAM headroom estimate is conservative, so
   installation cannot fail; an error here is an internal invariant
   violation. *)
let install_current t ~fid ~virtual_addressing =
  Activermt.Table.remove t.tables ~fid;
  match Allocator.regions_response t.allocator ~fid with
  | None -> ()
  | Some regions -> (
    match
      Activermt.Table.install t.tables ~fid ~virtual_addressing
        ~privileged:(Hashtbl.mem t.privileged fid)
        ?max_passes:(Hashtbl.find_opt t.pass_limits fid)
        ~regions
    with
    | Ok () -> ()
    | Error (`Tcam_capacity s) ->
      failwith (Printf.sprintf "Controller: TCAM overflow at stage %d" s)
    | Error `Already_installed -> assert false)

let copy_snapshot_to_new_region t ~fid =
  match (Hashtbl.find_opt t.snapshots fid, Activermt.Table.regions_of t.tables ~fid) with
  | None, _ | _, None -> ()
  | Some snaps, Some new_regions ->
    List.iter
      (fun (stage, _old_range, data) ->
        match new_regions.(stage) with
        | None -> ()
        | Some { Activermt.Packet.start_word; n_words } ->
          let st = Rmt.Device.stage t.device stage in
          let copy_len = min n_words (Array.length data) in
          Rmt.Register_array.restore_range st.Rmt.Device.regs ~lo:start_word
            (Array.sub data 0 copy_len))
      snaps

let virtual_of t fid =
  Option.value ~default:true (Hashtbl.find_opt t.virtual_flags fid)

let commit_app t ~fid =
  install_current t ~fid ~virtual_addressing:(virtual_of t fid);
  Activermt.Table.unquiesce t.tables ~fid

let commit_new_app t ~fid =
  install_current t ~fid ~virtual_addressing:(virtual_of t fid);
  zero_regions t ~fid;
  Activermt.Table.unquiesce t.tables ~fid

let response_packet t ~fid ~flags ~granted =
  let n = (Rmt.Device.params t.device).Rmt.Params.logical_stages in
  let regions =
    if granted then
      Option.value
        ~default:(Array.make n None)
        (Allocator.regions_response t.allocator ~fid)
    else Array.make n None
  in
  {
    Activermt.Packet.fid;
    seq = 0;
    flags;
    payload =
      Activermt.Packet.Response
        {
          status = (if granted then Activermt.Packet.Granted else Activermt.Packet.Rejected);
          regions;
        };
  }

(* Operator-facing policy knobs (Section 7.2): privilege is never taken
   from the packet, only from switch-side configuration. *)
let grant_privilege t ~fid =
  Hashtbl.replace t.privileged fid ();
  if Activermt.Table.installed t.tables ~fid then
    install_current t ~fid ~virtual_addressing:(virtual_of t fid)

let revoke_privilege t ~fid =
  Hashtbl.remove t.privileged fid;
  if Activermt.Table.installed t.tables ~fid then
    install_current t ~fid ~virtual_addressing:(virtual_of t fid)

let limit_recirculation t ~fid ~max_passes =
  if max_passes <= 0 then invalid_arg "Controller.limit_recirculation";
  Hashtbl.replace t.pass_limits fid max_passes;
  if Activermt.Table.installed t.tables ~fid then
    install_current t ~fid ~virtual_addressing:(virtual_of t fid)

let regions_packet t ~fid =
  if Allocator.is_resident t.allocator ~fid then
    Some
      (response_packet t ~fid
         ~flags:
           {
             Activermt.Packet.no_flags with
             virtual_addressing = virtual_of t fid;
           }
         ~granted:true)
  else None

let handle_request ?trace t (pkt : Activermt.Packet.t) =
  match pkt.Activermt.Packet.payload with
  | Activermt.Packet.Response _ | Activermt.Packet.Exec _ | Activermt.Packet.Bare ->
    Error (`Bad_packet "not an allocation request")
  | Activermt.Packet.Request _ when Allocator.is_resident t.allocator ~fid:pkt.Activermt.Packet.fid ->
    (* Idempotent re-request (dedup by FID): the response to an earlier
       request was lost in flight, or the request itself was duplicated
       by the network.  Answer from the existing allocation — never
       allocate twice for one FID.  Not charged to the provisioning log:
       no allocator or table work happened. *)
    let fid = pkt.Activermt.Packet.fid in
    Telemetry.incr t.tel "control.dup_requests";
    (match trace with
    | None -> ()
    | Some c ->
      ignore
        (Trace.instant t.tracer c
           ~attrs:[ ("fid", string_of_int fid) ]
           "control.dup_request"));
    Ok
      {
        fid;
        response =
          response_packet t ~fid ~flags:pkt.Activermt.Packet.flags ~granted:true;
        reallocated = [];
        phase = Committed;
        timing =
          Cost_model.breakdown t.cost ~allocation_s:0.0 ~entries_updated:0
            ~apps_touched:0 ~words_snapshotted:0 ~notifications:1;
      }
  | Activermt.Packet.Request req ->
    let fid = pkt.Activermt.Packet.fid in
    let flags = pkt.Activermt.Packet.flags in
    let spec = Spec.of_request req in
    let demand_blocks =
      Array.of_list
        (List.map
           (fun a -> max 1 a.Activermt.Packet.demand_blocks)
           req.Activermt.Packet.accesses)
    in
    let arrival =
      {
        Allocator.fid;
        spec;
        elastic = flags.Activermt.Packet.elastic;
        demand_blocks;
      }
    in
    Telemetry.span_begin t.tel "control.provision";
    Trace.with_span t.tracer trace
      ~attrs:[ ("fid", string_of_int fid) ]
      "control.provision"
    @@ fun tctx ->
    (match
       Telemetry.with_span t.tel "control.allocation" (fun () ->
           Allocator.admit ?trace:tctx t.allocator arrival)
     with
    | Allocator.Rejected r ->
      let timing =
        Cost_model.breakdown t.cost ~allocation_s:r.Allocator.compute_time_s
          ~entries_updated:0 ~apps_touched:0 ~words_snapshotted:0 ~notifications:1
      in
      t.log <- timing :: t.log;
      Telemetry.incr t.tel "control.rejections";
      Telemetry.span_end t.tel (* control.provision *);
      Error (`Rejected r)
    | Allocator.Admitted adm ->
      Hashtbl.replace t.virtual_flags fid flags.Activermt.Packet.virtual_addressing;
      let realloc_fids = List.map fst adm.Allocator.reallocated in
      let words =
        Telemetry.with_span t.tel "control.snapshot" (fun () ->
            List.fold_left (fun acc f -> acc + take_snapshot t ~fid:f) 0 realloc_fids)
      in
      (match tctx with
      | None -> ()
      | Some c ->
        ignore
          (Trace.instant t.tracer c
             ~attrs:[ ("words", string_of_int words) ]
             "control.snapshot"));
      Activermt.Table.reset_update_stats t.tables;
      Telemetry.span_begin t.tel "control.table_update";
      let phase =
        match (t.mode, realloc_fids) with
        | `Auto, _ | `Interactive, [] ->
          List.iter
            (fun f -> commit_app t ~fid:f)
            realloc_fids;
          commit_new_app t ~fid;
          (match t.mode with
          | `Auto -> List.iter (fun f -> copy_snapshot_to_new_region t ~fid:f) realloc_fids
          | `Interactive -> ());
          Committed
        | `Interactive, impacted ->
          List.iter (fun f -> Activermt.Table.quiesce t.tables ~fid:f) impacted;
          Activermt.Table.quiesce t.tables ~fid;
          t.pending <-
            Some { new_fid = fid; waiting = impacted; deadline_s = t.extraction_timeout_s };
          Awaiting_extraction { impacted }
      in
      Telemetry.span_end t.tel (* control.table_update *);
      Telemetry.incr t.tel "control.provisions";
      let stats = Activermt.Table.update_stats t.tables in
      (* In interactive mode the table work happens at commit time, but we
         still charge it to this provisioning event: estimate entries from
         the reallocated set when deferred. *)
      let entries =
        match phase with
        | Committed ->
          stats.Activermt.Table.entries_added + stats.Activermt.Table.entries_removed
        | Awaiting_extraction _ ->
          let n = (Rmt.Device.params t.device).Rmt.Params.logical_stages in
          2 * (n + 3) * (List.length realloc_fids + 1)
      in
      let timing =
        Cost_model.breakdown t.cost ~allocation_s:adm.Allocator.compute_time_s
          ~entries_updated:entries
          ~apps_touched:(List.length realloc_fids + 1)
          ~words_snapshotted:words
          ~notifications:(List.length realloc_fids + 1)
      in
      t.log <- timing :: t.log;
      Telemetry.span_end t.tel (* control.provision *);
      (match tctx with
      | None -> ()
      | Some c ->
        ignore
          (Trace.instant t.tracer c
             ~attrs:
               [
                 ("entries", string_of_int entries);
                 ("reallocated", string_of_int (List.length realloc_fids));
               ]
             "control.table_update");
        Hashtbl.replace t.admit_traces fid c);
      Ok
        {
          fid;
          response = response_packet t ~fid ~flags ~granted:true;
          reallocated = realloc_fids;
          phase;
          timing;
        })

let finish_pending_if_done t =
  match t.pending with
  | Some p when p.waiting = [] ->
    commit_new_app t ~fid:p.new_fid;
    t.pending <- None
  | Some _ | None -> ()

let handle_departure ?trace t ~fid =
  Trace.with_span t.tracer trace
    ~attrs:[ ("fid", string_of_int fid) ]
    "control.departure"
  @@ fun tctx ->
  Activermt.Table.remove t.tables ~fid;
  Hashtbl.remove t.admit_traces fid;
  Hashtbl.remove t.snapshots fid;
  (* A service departing mid-extraction no longer blocks the pending
     admission. *)
  (match t.pending with
  | Some p when List.mem fid p.waiting ->
    p.waiting <- List.filter (fun f -> f <> fid) p.waiting;
    finish_pending_if_done t
  | Some _ | None -> ());
  Activermt.Table.reset_update_stats t.tables;
  Telemetry.incr t.tel "control.departures";
  let t0 = Sys.time () in
  let expanded =
    Telemetry.with_span t.tel "control.allocation" (fun () ->
        Allocator.depart ?trace:tctx t.allocator ~fid)
  in
  let alloc_s = Sys.time () -. t0 in
  let expanded_fids = List.map fst expanded in
  let words =
    Telemetry.with_span t.tel "control.snapshot" (fun () ->
        List.fold_left (fun acc f -> acc + take_snapshot t ~fid:f) 0 expanded_fids)
  in
  Telemetry.with_span t.tel "control.table_update" (fun () ->
      List.iter
        (fun f ->
          install_current t ~fid:f ~virtual_addressing:(virtual_of t f);
          if t.mode = `Auto then copy_snapshot_to_new_region t ~fid:f)
        expanded_fids);
  let stats = Activermt.Table.update_stats t.tables in
  let timing =
    Cost_model.breakdown t.cost ~allocation_s:alloc_s
      ~entries_updated:(stats.Activermt.Table.entries_added + stats.Activermt.Table.entries_removed)
      ~apps_touched:(List.length expanded_fids + 1)
      ~words_snapshotted:words
      ~notifications:(List.length expanded_fids)
  in
  t.log <- timing :: t.log;
  (timing, expanded_fids)

let complete_extraction t ~fid =
  match t.pending with
  | None -> ()
  | Some p ->
    if List.mem fid p.waiting then begin
      p.waiting <- List.filter (fun f -> f <> fid) p.waiting;
      commit_app t ~fid;
      finish_pending_if_done t
    end

let pending_extraction t =
  match t.pending with None -> [] | Some p -> p.waiting

let expire t ~elapsed_s =
  match t.pending with
  | None -> ()
  | Some p ->
    p.deadline_s <- p.deadline_s -. elapsed_s;
    if p.deadline_s <= 0.0 then begin
      List.iter (fun f -> commit_app t ~fid:f) p.waiting;
      p.waiting <- [];
      finish_pending_if_done t
    end

let snapshot_of t ~fid =
  Option.value ~default:[] (Hashtbl.find_opt t.snapshots fid)

let read_region t ~fid ~stage =
  match Activermt.Table.regions_of t.tables ~fid with
  | None -> None
  | Some regions -> (
    match regions.(stage) with
    | None -> None
    | Some { Activermt.Packet.start_word; n_words } ->
      let st = Rmt.Device.stage t.device stage in
      Some
        (Rmt.Register_array.snapshot_range st.Rmt.Device.regs ~lo:start_word
           ~hi:(start_word + n_words - 1)))

let write_region_word t ~fid ~stage ~index ~value =
  match Activermt.Table.regions_of t.tables ~fid with
  | None -> false
  | Some regions -> (
    match regions.(stage) with
    | None -> false
    | Some { Activermt.Packet.start_word; n_words } ->
      if index < 0 || index >= n_words then false
      else begin
        let st = Rmt.Device.stage t.device stage in
        Rmt.Register_array.set st.Rmt.Device.regs (start_word + index) value;
        true
      end)

let provision_log t = List.rev t.log
let tracer t = t.tracer
let admit_trace t ~fid = Hashtbl.find_opt t.admit_traces fid
