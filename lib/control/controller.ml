open Import

type commit_mode = [ `Auto | `Interactive ]

type provision_phase =
  | Committed
  | Awaiting_extraction of { impacted : Activermt.Packet.fid list }

type provision = {
  fid : Activermt.Packet.fid;
  response : Activermt.Packet.t;
  reallocated : Activermt.Packet.fid list;
  phase : provision_phase;
  timing : Cost_model.breakdown;
}

type pending = {
  new_fid : Activermt.Packet.fid;
  mutable waiting : Activermt.Packet.fid list;
  mutable deadline_s : float;
}

type t = {
  device : Rmt.Device.t;
  tables : Activermt.Table.t;
  allocator : Allocator.t;
  cost : Cost_model.t;
  mode : commit_mode;
  extraction_timeout_s : float;
  snapshots : (Activermt.Packet.fid, (int * Pool.range * int array) list) Hashtbl.t;
  virtual_flags : (Activermt.Packet.fid, bool) Hashtbl.t;
  privileged : (Activermt.Packet.fid, unit) Hashtbl.t;
  pass_limits : (Activermt.Packet.fid, int) Hashtbl.t;
  mutable pending : pending option;
  mutable log : Cost_model.breakdown list;
  queue : (Activermt.Packet.t * Trace.ctx option) Queue.t;
  mutable epoch_counter : int;
  tel : Telemetry.t;
  series : Timeseries.t;
  tracer : Trace.t;
  admit_traces : (Activermt.Packet.fid, Trace.ctx) Hashtbl.t;
      (* the control.provision span that admitted each resident FID, so
         data-plane execution events can link back to it *)
}

let create ?scheme ?policy ?(cost = Cost_model.default) ?(mode = `Auto)
    ?(extraction_timeout_s = 1.0) ?(telemetry = Telemetry.default)
    ?(series = Timeseries.noop) ?(tracer = Trace.noop) device =
  {
    device;
    tables = Activermt.Table.create device;
    allocator =
      Allocator.create ?scheme ?policy ~telemetry ~series ~tracer
        (Rmt.Device.params device);
    cost;
    mode;
    extraction_timeout_s;
    tel = telemetry;
    series;
    tracer;
    admit_traces = Hashtbl.create 32;
    snapshots = Hashtbl.create 32;
    virtual_flags = Hashtbl.create 32;
    privileged = Hashtbl.create 8;
    pass_limits = Hashtbl.create 8;
    pending = None;
    log = [];
    queue = Queue.create ();
    epoch_counter = 0;
  }

let tables t = t.tables
let allocator t = t.allocator
let device t = t.device

let words_per_block t = Rmt.Params.words_per_block (Rmt.Device.params t.device)

let take_snapshot t ~fid =
  match Activermt.Table.regions_of t.tables ~fid with
  | None -> 0
  | Some regions ->
    let wpb = words_per_block t in
    let snaps = ref [] in
    let words = ref 0 in
    Array.iteri
      (fun stage reg ->
        match reg with
        | None -> ()
        | Some { Activermt.Packet.start_word; n_words } ->
          let st = Rmt.Device.stage t.device stage in
          let data =
            Rmt.Register_array.snapshot_range st.Rmt.Device.regs ~lo:start_word
              ~hi:(start_word + n_words - 1)
          in
          words := !words + n_words;
          snaps :=
            ( stage,
              { Pool.first_block = start_word / wpb; n_blocks = n_words / wpb },
              data )
            :: !snaps)
      regions;
    Hashtbl.replace t.snapshots fid (List.rev !snaps);
    !words

let zero_regions t ~fid =
  match Activermt.Table.regions_of t.tables ~fid with
  | None -> ()
  | Some regions ->
    Array.iteri
      (fun stage reg ->
        match reg with
        | None -> ()
        | Some { Activermt.Packet.start_word; n_words } ->
          let st = Rmt.Device.stage t.device stage in
          Rmt.Register_array.zero_range st.Rmt.Device.regs ~lo:start_word
            ~hi:(start_word + n_words - 1))
      regions

(* Install (or re-install) an app's tables from the allocator's current
   placement.  The allocator's TCAM headroom estimate is conservative, so
   installation cannot fail; an error here is an internal invariant
   violation. *)
let install_current t ~fid ~virtual_addressing =
  Activermt.Table.remove t.tables ~fid;
  match Allocator.regions_response t.allocator ~fid with
  | None -> ()
  | Some regions -> (
    match
      Activermt.Table.install t.tables ~fid ~virtual_addressing
        ~privileged:(Hashtbl.mem t.privileged fid)
        ?max_passes:(Hashtbl.find_opt t.pass_limits fid)
        ~regions
    with
    | Ok () -> ()
    | Error (`Tcam_capacity s) ->
      failwith (Printf.sprintf "Controller: TCAM overflow at stage %d" s)
    | Error `Already_installed -> assert false)

let copy_snapshot_to_new_region t ~fid =
  match (Hashtbl.find_opt t.snapshots fid, Activermt.Table.regions_of t.tables ~fid) with
  | None, _ | _, None -> ()
  | Some snaps, Some new_regions ->
    List.iter
      (fun (stage, _old_range, data) ->
        match new_regions.(stage) with
        | None -> ()
        | Some { Activermt.Packet.start_word; n_words } ->
          let st = Rmt.Device.stage t.device stage in
          let copy_len = min n_words (Array.length data) in
          Rmt.Register_array.restore_range st.Rmt.Device.regs ~lo:start_word
            (Array.sub data 0 copy_len))
      snaps

let virtual_of t fid =
  Option.value ~default:true (Hashtbl.find_opt t.virtual_flags fid)

let commit_app t ~fid =
  install_current t ~fid ~virtual_addressing:(virtual_of t fid);
  Activermt.Table.unquiesce t.tables ~fid

let commit_new_app t ~fid =
  install_current t ~fid ~virtual_addressing:(virtual_of t fid);
  zero_regions t ~fid;
  Activermt.Table.unquiesce t.tables ~fid

let response_packet t ~fid ~flags ~granted =
  let n = (Rmt.Device.params t.device).Rmt.Params.logical_stages in
  let regions =
    if granted then
      Option.value
        ~default:(Array.make n None)
        (Allocator.regions_response t.allocator ~fid)
    else Array.make n None
  in
  {
    Activermt.Packet.fid;
    seq = 0;
    flags;
    payload =
      Activermt.Packet.Response
        {
          status = (if granted then Activermt.Packet.Granted else Activermt.Packet.Rejected);
          regions;
        };
  }

(* Operator-facing policy knobs (Section 7.2): privilege is never taken
   from the packet, only from switch-side configuration. *)
let grant_privilege t ~fid =
  Hashtbl.replace t.privileged fid ();
  if Activermt.Table.installed t.tables ~fid then
    install_current t ~fid ~virtual_addressing:(virtual_of t fid)

let revoke_privilege t ~fid =
  Hashtbl.remove t.privileged fid;
  if Activermt.Table.installed t.tables ~fid then
    install_current t ~fid ~virtual_addressing:(virtual_of t fid)

let limit_recirculation t ~fid ~max_passes =
  if max_passes <= 0 then invalid_arg "Controller.limit_recirculation";
  Hashtbl.replace t.pass_limits fid max_passes;
  if Activermt.Table.installed t.tables ~fid then
    install_current t ~fid ~virtual_addressing:(virtual_of t fid)

let regions_packet t ~fid =
  if Allocator.is_resident t.allocator ~fid then
    Some
      (response_packet t ~fid
         ~flags:
           {
             Activermt.Packet.no_flags with
             virtual_addressing = virtual_of t fid;
           }
         ~granted:true)
  else None

let handle_request ?trace t (pkt : Activermt.Packet.t) =
  match pkt.Activermt.Packet.payload with
  | Activermt.Packet.Response _ | Activermt.Packet.Exec _ | Activermt.Packet.Bare ->
    Error (`Bad_packet "not an allocation request")
  | Activermt.Packet.Request _ when Allocator.is_resident t.allocator ~fid:pkt.Activermt.Packet.fid ->
    (* Idempotent re-request (dedup by FID): the response to an earlier
       request was lost in flight, or the request itself was duplicated
       by the network.  Answer from the existing allocation — never
       allocate twice for one FID.  Not charged to the provisioning log:
       no allocator or table work happened. *)
    let fid = pkt.Activermt.Packet.fid in
    Telemetry.incr t.tel "control.dup_requests";
    (match trace with
    | None -> ()
    | Some c ->
      ignore
        (Trace.instant t.tracer c
           ~attrs:[ ("fid", string_of_int fid) ]
           "control.dup_request"));
    Ok
      {
        fid;
        response =
          response_packet t ~fid ~flags:pkt.Activermt.Packet.flags ~granted:true;
        reallocated = [];
        phase = Committed;
        timing =
          Cost_model.breakdown t.cost ~allocation_s:0.0 ~entries_updated:0
            ~apps_touched:0 ~words_snapshotted:0 ~notifications:1;
      }
  | Activermt.Packet.Request req ->
    let fid = pkt.Activermt.Packet.fid in
    let flags = pkt.Activermt.Packet.flags in
    let spec = Spec.of_request req in
    let demand_blocks =
      Array.of_list
        (List.map
           (fun a -> max 1 a.Activermt.Packet.demand_blocks)
           req.Activermt.Packet.accesses)
    in
    let arrival =
      {
        Allocator.fid;
        spec;
        elastic = flags.Activermt.Packet.elastic;
        demand_blocks;
      }
    in
    Telemetry.span_begin t.tel "control.provision";
    Trace.with_span t.tracer trace
      ~attrs:[ ("fid", string_of_int fid) ]
      "control.provision"
    @@ fun tctx ->
    (match
       Telemetry.with_span t.tel "control.allocation" (fun () ->
           Allocator.admit ?trace:tctx t.allocator arrival)
     with
    | Allocator.Rejected r ->
      let timing =
        Cost_model.breakdown t.cost ~allocation_s:r.Allocator.compute_time_s
          ~entries_updated:0 ~apps_touched:0 ~words_snapshotted:0 ~notifications:1
      in
      t.log <- timing :: t.log;
      Telemetry.incr t.tel "control.rejections";
      Timeseries.add t.series "control.rejections";
      Telemetry.span_end t.tel (* control.provision *);
      Error (`Rejected r)
    | Allocator.Admitted adm ->
      Hashtbl.replace t.virtual_flags fid flags.Activermt.Packet.virtual_addressing;
      let realloc_fids = List.map fst adm.Allocator.reallocated in
      let words =
        Telemetry.with_span t.tel "control.snapshot" (fun () ->
            List.fold_left (fun acc f -> acc + take_snapshot t ~fid:f) 0 realloc_fids)
      in
      (match tctx with
      | None -> ()
      | Some c ->
        ignore
          (Trace.instant t.tracer c
             ~attrs:[ ("words", string_of_int words) ]
             "control.snapshot"));
      Activermt.Table.reset_update_stats t.tables;
      Telemetry.span_begin t.tel "control.table_update";
      let phase =
        match (t.mode, realloc_fids) with
        | `Auto, _ | `Interactive, [] ->
          List.iter
            (fun f -> commit_app t ~fid:f)
            realloc_fids;
          commit_new_app t ~fid;
          (match t.mode with
          | `Auto -> List.iter (fun f -> copy_snapshot_to_new_region t ~fid:f) realloc_fids
          | `Interactive -> ());
          Committed
        | `Interactive, impacted ->
          List.iter (fun f -> Activermt.Table.quiesce t.tables ~fid:f) impacted;
          Activermt.Table.quiesce t.tables ~fid;
          t.pending <-
            Some { new_fid = fid; waiting = impacted; deadline_s = t.extraction_timeout_s };
          Awaiting_extraction { impacted }
      in
      Telemetry.span_end t.tel (* control.table_update *);
      Telemetry.incr t.tel "control.provisions";
      Timeseries.add t.series "control.provisions";
      let stats = Activermt.Table.update_stats t.tables in
      (* In interactive mode the table work happens at commit time, but we
         still charge it to this provisioning event: estimate entries from
         the reallocated set when deferred. *)
      let entries =
        match phase with
        | Committed ->
          stats.Activermt.Table.entries_added + stats.Activermt.Table.entries_removed
        | Awaiting_extraction _ ->
          let n = (Rmt.Device.params t.device).Rmt.Params.logical_stages in
          2 * (n + 3) * (List.length realloc_fids + 1)
      in
      let timing =
        Cost_model.breakdown t.cost ~allocation_s:adm.Allocator.compute_time_s
          ~entries_updated:entries
          ~apps_touched:(List.length realloc_fids + 1)
          ~words_snapshotted:words
          ~notifications:(List.length realloc_fids + 1)
      in
      t.log <- timing :: t.log;
      Telemetry.span_end t.tel (* control.provision *);
      (match tctx with
      | None -> ()
      | Some c ->
        ignore
          (Trace.instant t.tracer c
             ~attrs:
               [
                 ("entries", string_of_int entries);
                 ("reallocated", string_of_int (List.length realloc_fids));
               ]
             "control.table_update");
        Hashtbl.replace t.admit_traces fid c);
      Ok
        {
          fid;
          response = response_packet t ~fid ~flags ~granted:true;
          reallocated = realloc_fids;
          phase;
          timing;
        })

(* --- Async provision queue: enqueue + epoch drain ------------------- *)

type epoch_result = {
  epoch_index : int;
  results :
    (provision, [ `Rejected of Allocator.rejected | `Bad_packet of string ]) result
    list;
  epoch_timing : Cost_model.breakdown;
  installs : int;
  batch : Allocator.batch_stats option;
}

let enqueue_request ?trace t (pkt : Activermt.Packet.t) =
  Telemetry.incr t.tel "control.enqueued";
  let trace =
    match trace with
    | None -> None
    | Some c ->
      Some
        (Trace.instant t.tracer c
           ~attrs:[ ("fid", string_of_int pkt.Activermt.Packet.fid) ]
           "control.enqueue")
  in
  Queue.add (pkt, trace) t.queue

let queue_depth t = Queue.length t.queue

let dup_provision t ~fid ~flags =
  Telemetry.incr t.tel "control.dup_requests";
  {
    fid;
    response = response_packet t ~fid ~flags ~granted:true;
    reallocated = [];
    phase = Committed;
    timing =
      Cost_model.breakdown t.cost ~allocation_s:0.0 ~entries_updated:0
        ~apps_touched:0 ~words_snapshotted:0 ~notifications:1;
  }

let add_breakdown (a : Cost_model.breakdown) (b : Cost_model.breakdown) =
  {
    Cost_model.allocation_s = a.Cost_model.allocation_s +. b.Cost_model.allocation_s;
    table_update_s = a.Cost_model.table_update_s +. b.Cost_model.table_update_s;
    snapshot_s = a.Cost_model.snapshot_s +. b.Cost_model.snapshot_s;
    notify_s = a.Cost_model.notify_s +. b.Cost_model.notify_s;
  }

let zero_breakdown =
  {
    Cost_model.allocation_s = 0.0;
    table_update_s = 0.0;
    snapshot_s = 0.0;
    notify_s = 0.0;
  }

(* One admission epoch over up to [max_batch] queued requests (Auto mode):
   classify slots, score fresh arrivals together through
   [Allocator.admit_batch], then commit the whole epoch through a single
   batched table-write session — each touched app's tables are
   (re)installed exactly once, so [Table.epoch] bumps once per app per
   epoch and the JIT invalidates once, not k times. *)
let drain_epoch_auto t slots =
  let epoch_index = t.epoch_counter in
  t.epoch_counter <- epoch_index + 1;
  Telemetry.incr t.tel "control.epochs";
  Telemetry.span_begin t.tel "control.epoch";
  let ectx =
    Trace.start_trace t.tracer
      ~attrs:
        [
          ("epoch", string_of_int epoch_index);
          ("batch", string_of_int (List.length slots));
        ]
      "control.epoch"
  in
  let t_epoch_start = Trace.now t.tracer in
  (* Classify each slot in enqueue order.  Requests for FIDs already
     resident are network duplicates / client retries; a second request
     for the same FID within the epoch is an intra-epoch echo resolved
     from its primary's outcome.  Neither reaches the allocator. *)
  let seen = Hashtbl.create 16 in
  let arrivals_rev = ref [] in
  let n_arrivals = ref 0 in
  let classify (pkt, _tr) =
    match pkt.Activermt.Packet.payload with
    | Activermt.Packet.Response _ | Activermt.Packet.Exec _ | Activermt.Packet.Bare
      ->
      `Bad "not an allocation request"
    | Activermt.Packet.Request req -> (
      let fid = pkt.Activermt.Packet.fid in
      if Allocator.is_resident t.allocator ~fid then `Dup
      else
        match Hashtbl.find_opt seen fid with
        | Some i -> `Echo i
        | None ->
          let flags = pkt.Activermt.Packet.flags in
          let arrival =
            {
              Allocator.fid;
              spec = Spec.of_request req;
              elastic = flags.Activermt.Packet.elastic;
              demand_blocks =
                Array.of_list
                  (List.map
                     (fun a -> max 1 a.Activermt.Packet.demand_blocks)
                     req.Activermt.Packet.accesses);
            }
          in
          let i = !n_arrivals in
          Hashtbl.replace seen fid i;
          incr n_arrivals;
          arrivals_rev := arrival :: !arrivals_rev;
          `Fresh i)
  in
  let classes = List.map (fun s -> (s, classify s)) slots in
  let arrivals = List.rev !arrivals_rev in
  let batch =
    Telemetry.with_span t.tel "control.allocation" (fun () ->
        Allocator.admit_batch ?trace:ectx t.allocator arrivals)
  in
  let outcomes = Array.of_list batch.Allocator.outcomes in
  (* Record the virtual-addressing choice of every admitted arrival before
     any table install reads it. *)
  List.iter
    (fun ((pkt, _), cls) ->
      match cls with
      | `Fresh i -> (
        match outcomes.(i) with
        | Allocator.Admitted _ ->
          Hashtbl.replace t.virtual_flags pkt.Activermt.Packet.fid
            pkt.Activermt.Packet.flags.Activermt.Packet.virtual_addressing
        | Allocator.Rejected _ -> ())
      | `Bad _ | `Dup | `Echo _ -> ())
    classes;
  let realloc_fids = List.map fst batch.Allocator.batch_reallocated in
  let admitted_fids =
    List.filter_map
      (function
        | Allocator.Admitted adm -> Some adm.Allocator.fid
        | Allocator.Rejected _ -> None)
      batch.Allocator.outcomes
  in
  let words =
    Telemetry.with_span t.tel "control.snapshot" (fun () ->
        List.fold_left (fun acc f -> acc + take_snapshot t ~fid:f) 0 realloc_fids)
  in
  Activermt.Table.reset_update_stats t.tables;
  Telemetry.span_begin t.tel "control.table_update";
  List.iter (fun f -> commit_app t ~fid:f) realloc_fids;
  List.iter (fun f -> commit_new_app t ~fid:f) admitted_fids;
  List.iter (fun f -> copy_snapshot_to_new_region t ~fid:f) realloc_fids;
  Telemetry.span_end t.tel (* control.table_update *);
  let stats = Activermt.Table.update_stats t.tables in
  let entries =
    stats.Activermt.Table.entries_added + stats.Activermt.Table.entries_removed
  in
  let installs = List.length realloc_fids + List.length admitted_fids in
  let epoch_timing =
    Cost_model.breakdown_batched t.cost
      ~allocation_s:batch.Allocator.stats.Allocator.batch_compute_time_s
      ~entries_updated:entries ~words_snapshotted:words ~notifications:installs
  in
  t.log <- epoch_timing :: t.log;
  Telemetry.incr t.tel ~by:(List.length admitted_fids) "control.provisions";
  Telemetry.incr t.tel
    ~by:batch.Allocator.stats.Allocator.batch_rejected
    "control.rejections";
  Timeseries.add t.series
    ~by:(float_of_int (List.length admitted_fids))
    "control.provisions";
  Timeseries.add t.series
    ~by:(float_of_int batch.Allocator.stats.Allocator.batch_rejected)
    "control.rejections";
  (match ectx with
  | None -> ()
  | Some c ->
    List.iter
      (fun fid ->
        let pctx =
          Trace.span t.tracer c
            ~attrs:[ ("fid", string_of_int fid) ]
            ~t_start:t_epoch_start ~t_end:(Trace.now t.tracer) "control.provision"
        in
        Hashtbl.replace t.admit_traces fid pctx)
      admitted_fids);
  let results =
    List.map
      (fun ((pkt, tr), cls) ->
        let fid = pkt.Activermt.Packet.fid in
        let flags = pkt.Activermt.Packet.flags in
        match cls with
        | `Bad msg -> Error (`Bad_packet msg)
        | `Dup ->
          (match tr with
          | None -> ()
          | Some c ->
            ignore
              (Trace.instant t.tracer c
                 ~attrs:[ ("fid", string_of_int fid) ]
                 "control.dup_request"));
          Ok (dup_provision t ~fid ~flags)
        | `Echo i -> (
          (* Intra-epoch duplicate: answer from the primary's outcome,
             never allocate twice. *)
          match outcomes.(i) with
          | Allocator.Rejected r -> Error (`Rejected r)
          | Allocator.Admitted _ -> Ok (dup_provision t ~fid ~flags))
        | `Fresh i -> (
          match outcomes.(i) with
          | Allocator.Rejected r -> Error (`Rejected r)
          | Allocator.Admitted adm ->
            Ok
              {
                fid;
                response = response_packet t ~fid ~flags ~granted:true;
                reallocated = List.map fst adm.Allocator.reallocated;
                phase = Committed;
                timing = epoch_timing;
              }))
      classes
  in
  Telemetry.span_end t.tel (* control.epoch *);
  { epoch_index; results; epoch_timing; installs; batch = Some batch.Allocator.stats }

(* Interactive mode defers commits behind client-side extraction, which is
   inherently per-admission — fall back to the sequential digest path. *)
let drain_epoch_interactive t slots =
  let epoch_index = t.epoch_counter in
  t.epoch_counter <- epoch_index + 1;
  Telemetry.incr t.tel "control.epochs";
  let results = List.map (fun (pkt, tr) -> handle_request ?trace:tr t pkt) slots in
  let epoch_timing =
    List.fold_left
      (fun acc r ->
        match r with
        | Ok p -> add_breakdown acc p.timing
        | Error (`Rejected (r : Allocator.rejected)) ->
          add_breakdown acc
            (Cost_model.breakdown t.cost ~allocation_s:r.Allocator.compute_time_s
               ~entries_updated:0 ~apps_touched:0 ~words_snapshotted:0
               ~notifications:1)
        | Error (`Bad_packet _) -> acc)
      zero_breakdown results
  in
  let installs =
    List.fold_left
      (fun acc r ->
        match r with
        | Ok p -> acc + 1 + List.length p.reallocated
        | Error _ -> acc)
      0 results
  in
  { epoch_index; results; epoch_timing; installs; batch = None }

let drain ?(max_batch = 64) t =
  if max_batch <= 0 then invalid_arg "Controller.drain: max_batch must be positive";
  Timeseries.observe t.series "control.queue_depth" (float_of_int (Queue.length t.queue));
  let epochs = ref [] in
  while not (Queue.is_empty t.queue) do
    let slots = ref [] in
    let n = ref 0 in
    while (not (Queue.is_empty t.queue)) && !n < max_batch do
      slots := Queue.pop t.queue :: !slots;
      incr n
    done;
    let slots = List.rev !slots in
    let epoch =
      match t.mode with
      | `Auto -> drain_epoch_auto t slots
      | `Interactive -> drain_epoch_interactive t slots
    in
    epochs := epoch :: !epochs
  done;
  List.rev !epochs

let finish_pending_if_done t =
  match t.pending with
  | Some p when p.waiting = [] ->
    commit_new_app t ~fid:p.new_fid;
    t.pending <- None
  | Some _ | None -> ()

let handle_departure ?trace t ~fid =
  Trace.with_span t.tracer trace
    ~attrs:[ ("fid", string_of_int fid) ]
    "control.departure"
  @@ fun tctx ->
  Activermt.Table.remove t.tables ~fid;
  Hashtbl.remove t.admit_traces fid;
  Hashtbl.remove t.snapshots fid;
  (* A service departing mid-extraction no longer blocks the pending
     admission. *)
  (match t.pending with
  | Some p when List.mem fid p.waiting ->
    p.waiting <- List.filter (fun f -> f <> fid) p.waiting;
    finish_pending_if_done t
  | Some _ | None -> ());
  Activermt.Table.reset_update_stats t.tables;
  Telemetry.incr t.tel "control.departures";
  let t0 = Sys.time () in
  let expanded =
    Telemetry.with_span t.tel "control.allocation" (fun () ->
        Allocator.depart ?trace:tctx t.allocator ~fid)
  in
  let alloc_s = Sys.time () -. t0 in
  let expanded_fids = List.map fst expanded in
  let words =
    Telemetry.with_span t.tel "control.snapshot" (fun () ->
        List.fold_left (fun acc f -> acc + take_snapshot t ~fid:f) 0 expanded_fids)
  in
  Telemetry.with_span t.tel "control.table_update" (fun () ->
      List.iter
        (fun f ->
          install_current t ~fid:f ~virtual_addressing:(virtual_of t f);
          if t.mode = `Auto then copy_snapshot_to_new_region t ~fid:f)
        expanded_fids);
  let stats = Activermt.Table.update_stats t.tables in
  let timing =
    Cost_model.breakdown t.cost ~allocation_s:alloc_s
      ~entries_updated:(stats.Activermt.Table.entries_added + stats.Activermt.Table.entries_removed)
      ~apps_touched:(List.length expanded_fids + 1)
      ~words_snapshotted:words
      ~notifications:(List.length expanded_fids)
  in
  t.log <- timing :: t.log;
  (timing, expanded_fids)

let complete_extraction t ~fid =
  match t.pending with
  | None -> ()
  | Some p ->
    if List.mem fid p.waiting then begin
      p.waiting <- List.filter (fun f -> f <> fid) p.waiting;
      commit_app t ~fid;
      finish_pending_if_done t
    end

let pending_extraction t =
  match t.pending with None -> [] | Some p -> p.waiting

let expire t ~elapsed_s =
  match t.pending with
  | None -> ()
  | Some p ->
    p.deadline_s <- p.deadline_s -. elapsed_s;
    if p.deadline_s <= 0.0 then begin
      List.iter (fun f -> commit_app t ~fid:f) p.waiting;
      p.waiting <- [];
      finish_pending_if_done t
    end

let snapshot_of t ~fid =
  Option.value ~default:[] (Hashtbl.find_opt t.snapshots fid)

let read_region t ~fid ~stage =
  match Activermt.Table.regions_of t.tables ~fid with
  | None -> None
  | Some regions -> (
    match regions.(stage) with
    | None -> None
    | Some { Activermt.Packet.start_word; n_words } ->
      let st = Rmt.Device.stage t.device stage in
      Some
        (Rmt.Register_array.snapshot_range st.Rmt.Device.regs ~lo:start_word
           ~hi:(start_word + n_words - 1)))

let write_region_word t ~fid ~stage ~index ~value =
  match Activermt.Table.regions_of t.tables ~fid with
  | None -> false
  | Some regions -> (
    match regions.(stage) with
    | None -> false
    | Some { Activermt.Packet.start_word; n_words } ->
      if index < 0 || index >= n_words then false
      else begin
        let st = Rmt.Device.stage t.device stage in
        Rmt.Register_array.set st.Rmt.Device.regs (start_word + index) value;
        true
      end)

let provision_log t = List.rev t.log
let tracer t = t.tracer
let admit_trace t ~fid = Hashtbl.find_opt t.admit_traces fid
