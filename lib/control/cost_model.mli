(** Provisioning-time cost model (Section 6.2 / Figure 8a).

    Allocation *computation* time is measured for real (our allocator
    actually runs); everything a Tofino would spend outside that — BFRT
    table-entry updates, register snapshots over the control plane, and
    the client/controller notification round-trips — is modeled with
    per-unit costs calibrated against the constants the paper reports:
    provisioning levels off at slightly over one second, dominated by
    table updates, while snapshotting stays comparatively small; a
    comparable single-program P4 compile takes 28.79 s. *)

type t = {
  table_entry_update_s : float;  (** per entry added or removed *)
  app_install_s : float;
      (** fixed BFRT session/batch overhead per app whose tables are
          (re)installed or removed *)
  snapshot_word_s : float;  (** per 32-bit register word snapshotted *)
  notify_rtt_s : float;  (** controller<->client notification round trip *)
  digest_s : float;  (** data-plane digest to switch CPU per request *)
  batch_setup_s : float;
      (** fixed cost of opening/flushing one batched BFRT write session
          per admission epoch (RBFRT-style) *)
  batched_entry_update_s : float;
      (** per entry added or removed inside a batched write — amortized,
          an order of magnitude-plus below [table_entry_update_s] *)
}

val default : t

val p4_compile_s : float
(** Measured compile time of the 22-instance monolithic cache program the
    paper quotes for comparison (28.79 s). *)

val p4_reprovision_blackout_s : float
(** Traffic blackout of a conventional P4 re-provision, O(50 ms) [5]. *)

val degrade : t -> slowdown:float -> t
(** A cost model whose control-plane table work ([table_entry_update_s],
    [app_install_s], [batch_setup_s], [batched_entry_update_s]) runs
    [slowdown] times slower — the fault simulator's "slow table updates"
    knob (a congested or flaky BFRT session).  Snapshot/notify costs are
    unchanged.
    @raise Invalid_argument if [slowdown < 1]. *)

type breakdown = {
  allocation_s : float;  (** measured compute time *)
  table_update_s : float;
  snapshot_s : float;
  notify_s : float;
}

val total : breakdown -> float

val breakdown :
  t ->
  allocation_s:float ->
  entries_updated:int ->
  apps_touched:int ->
  words_snapshotted:int ->
  notifications:int ->
  breakdown

val breakdown_batched :
  t ->
  allocation_s:float ->
  entries_updated:int ->
  words_snapshotted:int ->
  notifications:int ->
  breakdown
(** Cost of one admission epoch committed through a single batched BFRT
    write session: [batch_setup_s] once plus [batched_entry_update_s] per
    entry (no per-app install cost — apps ride the shared batch), and at
    most one un-overlapped notification round trip because the async
    provision queue overlaps the rest with the next epoch's scoring. *)
