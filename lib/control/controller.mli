open Import

(** The switch controller (Section 4.3).

    Runs on the switch CPU: serializes allocation requests arriving as
    data-plane digests, invokes the online allocator, installs/removes
    match-table entries and protection ranges, takes consistent snapshots
    of reallocated regions, quiesces impacted services during migration,
    and answers clients with allocation-response packets.

    Two commit modes:
    - [`Auto]: the whole admission (snapshot, table update, state copy)
      completes synchronously; reallocated apps' old contents are copied
      into their new regions by the control plane.  Used by the allocator
      benchmarks.
    - [`Interactive]: after computing an allocation the controller
      notifies impacted apps and leaves old tables in place so clients can
      extract state through the data plane; [complete_extraction] (or a
      timeout via [expire]) then applies the new tables and reactivates.
      Used by the end-to-end case study (Figures 9, 10). *)

type commit_mode = [ `Auto | `Interactive ]

type provision_phase =
  | Committed  (** tables updated; service may transmit *)
  | Awaiting_extraction of { impacted : Activermt.Packet.fid list }
      (** interactive mode: impacted apps must extract state and ack *)

type provision = {
  fid : Activermt.Packet.fid;
  response : Activermt.Packet.t;  (** allocation response for the client *)
  reallocated : Activermt.Packet.fid list;
  phase : provision_phase;
  timing : Cost_model.breakdown;
}

type t

val create :
  ?scheme:Allocator.scheme ->
  ?policy:Mutant.policy ->
  ?cost:Cost_model.t ->
  ?mode:commit_mode ->
  ?extraction_timeout_s:float ->
  ?telemetry:Telemetry.t ->
  ?series:Timeseries.t ->
  ?tracer:Trace.t ->
  Rmt.Device.t ->
  t
(** [telemetry] (default {!Telemetry.default}) is shared with the
    embedded allocator and additionally receives the controller's
    measured provisioning phases — [control.provision] with nested
    [control.allocation], [control.snapshot] and [control.table_update]
    spans (Fig. 8a's breakdown from real timers, next to the modeled
    {!Cost_model.breakdown}) — plus [control.provisions],
    [control.rejections] and [control.departures] counters.

    [tracer] (default {!Trace.noop}) is shared with the embedded
    allocator; when a request arrives with a trace context the
    provisioning phases are recorded as causal trace spans too. *)

val tables : t -> Activermt.Table.t
val allocator : t -> Allocator.t
val device : t -> Rmt.Device.t

val handle_request :
  ?trace:Trace.ctx ->
  t ->
  Activermt.Packet.t ->
  (provision, [ `Rejected of Allocator.rejected | `Bad_packet of string ]) result
(** Process one allocation-request packet (admission is serialized; this
    is the digest path).  On success the new app's tables are installed
    (its region zeroed) and, depending on mode, reallocated apps are
    either migrated immediately or left awaiting extraction.

    Idempotent per FID: a request for an already-resident FID (a network
    duplicate, or a client retry after its response was lost) is answered
    from the existing allocation — [reallocated = []], zero-work timing,
    counted under [control.dup_requests] — never allocated twice. *)

(** {2 Async provision queue (batched epoch admission)}

    The pipelined alternative to the one-digest-at-a-time path:
    [enqueue_request] is the cheap producer side (what the digest
    interrupt handler would do on a real switch), and [drain] admits the
    backlog in epochs of up to [max_batch] requests.  Each epoch scores
    its arrivals against one shared pool snapshot
    ({!Allocator.admit_batch}), commits every touched app's tables
    exactly once through a single batched write session
    ({!Cost_model.breakdown_batched}), and overlaps client notification
    round trips with the next epoch's scoring. *)

type epoch_result = {
  epoch_index : int;  (** 0-based, monotonic across [drain] calls *)
  results :
    (provision, [ `Rejected of Allocator.rejected | `Bad_packet of string ]) result
    list;
      (** 1:1 with the epoch's requests, in enqueue order.  Admitted
          provisions share the epoch's batched [timing]. *)
  epoch_timing : Cost_model.breakdown;
      (** one batched table-write session for the whole epoch *)
  installs : int;
      (** table (re)installs performed: each admitted or reallocated app
          exactly once, so each FID's [Table.epoch] advances once per
          epoch and the JIT invalidates once, not once per arrival *)
  batch : Allocator.batch_stats option;
      (** the allocator's epoch statistics ([None] in [`Interactive]
          mode, which falls back to sequential {!handle_request}) *)
}

val enqueue_request : ?trace:Trace.ctx -> t -> Activermt.Packet.t -> unit
(** Queue an allocation request for the next [drain].  Constant-time; no
    allocator or table work happens here.  Counted under
    [control.enqueued]; with a trace context, emits a [control.enqueue]
    instant and the stored context chains the eventual provision back to
    the request's trace. *)

val queue_depth : t -> int

val drain : ?max_batch:int -> t -> epoch_result list
(** Admit the whole backlog in epochs of up to [max_batch] (default 64)
    requests, oldest first; [] if the queue is empty.

    FID-idempotent like {!handle_request}: requests for already-resident
    FIDs are answered from the existing allocation, and a duplicate FID
    {e within} an epoch is an intra-epoch echo answered from its
    primary's outcome — the allocator sees each FID at most once.  Both
    count under [control.dup_requests].

    Each epoch emits a [control.epoch] trace span (attrs [epoch],
    [batch]) parenting the allocator's spans and one [control.provision]
    child span per admitted FID (registered in {!admit_trace}), plus
    [control.epochs] / [control.provisions] / [control.rejections]
    counters.
    @raise Invalid_argument if [max_batch <= 0]. *)

val handle_departure :
  ?trace:Trace.ctx ->
  t ->
  fid:Activermt.Packet.fid ->
  Cost_model.breakdown * Activermt.Packet.fid list
(** Release a service's allocation; returns timing and the apps expanded
    (reallocated) into the freed space. *)

val complete_extraction : t -> fid:Activermt.Packet.fid -> unit
(** Client signals (bare active packet with ack) that it finished
    extracting state; when all impacted apps of a pending admission have
    acked, the new tables are applied and everyone is reactivated. *)

val pending_extraction : t -> Activermt.Packet.fid list
(** Apps the controller is still waiting on. *)

val expire : t -> elapsed_s:float -> unit
(** Advance the extraction timeout clock; unresponsive apps are forcibly
    committed (Section 4.3's timeout). *)

val grant_privilege : t -> fid:Activermt.Packet.fid -> unit
(** Mark the FID as a curated, privileged service (Section 7.2): its
    programs may execute FORK and SET_DST.  Privilege is switch-side
    configuration, never taken from packets.  Takes effect immediately,
    re-installing tables if the FID is resident. *)

val revoke_privilege : t -> fid:Activermt.Packet.fid -> unit

val limit_recirculation : t -> fid:Activermt.Packet.fid -> max_passes:int -> unit
(** Cap the FID's pipeline passes below the device recirculation limit —
    the bandwidth-inflation rate limiting Section 7.2 contemplates.
    @raise Invalid_argument if [max_passes] is not positive. *)

val regions_packet :
  t -> fid:Activermt.Packet.fid -> Activermt.Packet.t option
(** A granted-style allocation response describing the FID's *current*
    regions; used to inform reallocated clients of their new placement.
    [None] if the FID is not resident. *)

val snapshot_of :
  t -> fid:Activermt.Packet.fid -> (int * Pool.range * int array) list
(** Consistent snapshot (stage, old block range, words) taken for the FID
    at its last reallocation; [] if none. *)

val read_region : t -> fid:Activermt.Packet.fid -> stage:int -> int array option
(** Control-plane (BFRT-style) read of the app's current region. *)

val write_region_word :
  t -> fid:Activermt.Packet.fid -> stage:int -> index:int -> value:int -> bool
(** Control-plane write of one word, region-relative; false if no region. *)

val provision_log : t -> Cost_model.breakdown list
(** Breakdown of every provisioning event so far, oldest first. *)

val tracer : t -> Trace.t
(** The tracer passed at {!create} ({!Trace.noop} by default). *)

val admit_trace : t -> fid:Activermt.Packet.fid -> Trace.ctx option
(** The [control.provision] span that admitted the FID, while it stays
    resident — lets data-plane execution events link back to the
    control-plane decision that placed the program. *)
