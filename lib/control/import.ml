(* Short aliases for sibling libraries used by the controller. *)
module Spec = Activermt_compiler.Spec
module Mutant = Activermt_compiler.Mutant
module Allocator = Activermt_alloc.Allocator
module Pool = Activermt_alloc.Pool
module Telemetry = Activermt_telemetry.Telemetry
module Timeseries = Activermt_telemetry.Timeseries
module Trace = Activermt_telemetry.Trace
