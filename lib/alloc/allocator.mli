open Import

(** The online memory allocator (Section 4.2).

    On each arrival the allocator systematically searches the new
    program's mutants (existing applications are never moved across
    stages), scores feasible candidates with the configured scheme's cost
    over per-stage fungible memory, and computes the resulting within-stage
    placements.  Elastic residents of the touched stages are resized by
    progressive filling; any resident whose region changed is reported as
    reallocated (it must snapshot and migrate its state, Section 4.3).

    Departures free the region and expand the remaining elastic residents
    of the affected stages. *)

type scheme = Worst_fit | Best_fit | First_fit | Min_realloc

val scheme_to_string : scheme -> string
val scheme_of_string : string -> (scheme, string) result

type arrival = {
  fid : int;
  spec : Spec.t;
  elastic : bool;
  demand_blocks : int array;
      (** per memory access: exact blocks for inelastic apps, minimum
          blocks for elastic apps *)
}

type stage_range = { stage : int; range : Pool.range }

type admitted = {
  fid : int;
  mutant : Mutant.t;
  regions : stage_range list;  (** the new app's placement *)
  reallocated : (int * stage_range list) list;
      (** existing apps whose placement changed, with their full new
          layout *)
  considered_mutants : int;
  feasible_mutants : int;
  compute_time_s : float;
}

type rejected = { considered_mutants : int; compute_time_s : float }

type outcome = Admitted of admitted | Rejected of rejected

type batch_stats = {
  batch_size : int;
  batch_admitted : int;
  batch_rejected : int;
  memo_hits : int;
      (** arrivals whose scoring was answered from the epoch's memo
          (same program shape, elasticity and demand as an earlier
          arrival scored against the same shared snapshot) *)
  rescored : int;
      (** conflict fallbacks: arrivals whose snapshot-chosen placement was
          consumed by an earlier commit and were re-scored sequentially
          against a fresh snapshot *)
  stage_refills : int;  (** coalesced [Pool.refill_elastic] calls *)
  refills_saved : int;
      (** per-(arrival, stage) refills a sequential replay would have run
          minus [stage_refills] *)
  batch_compute_time_s : float;
}

type batch = {
  outcomes : outcome list;  (** 1:1 with the arrivals, in order *)
  batch_reallocated : (int * stage_range list) list;
      (** deduplicated union of pre-existing apps whose placement changed
          anywhere in the epoch, with their full new layouts — what the
          controller must snapshot and reinstall, once per epoch *)
  stats : batch_stats;
}

type t

val create :
  ?scheme:scheme ->
  ?policy:Mutant.policy ->
  ?mutant_limit:int ->
  ?domains:int ->
  ?telemetry:Telemetry.t ->
  ?series:Timeseries.t ->
  ?tracer:Trace.t ->
  Rmt.Params.t ->
  t
(** Defaults: worst-fit (the prototype's choice) and most-constrained.

    [domains] (default 1) is the fan-out width for mutant scoring: each
    admission snapshots per-stage occupancy once and scores candidates
    against it on that many domains.  Outcomes are bit-identical at any
    width — scoring is read-only over the snapshot and the reduce is a
    deterministic min-cost/lowest-index fold — so the knob trades cores
    for allocation latency only.

    [telemetry] (default {!Telemetry.default}) receives the allocator's
    counters ([alloc.admitted], [alloc.rejected], [alloc.departed],
    [alloc.reallocated], [alloc.mutants.considered/feasible],
    [alloc.enumerate.hit/miss]) and per-phase spans ([alloc.admit] with
    nested [alloc.enumerate], [alloc.snapshot], [alloc.score],
    [alloc.fill]; [alloc.depart]). *)

val params : t -> Rmt.Params.t
val scheme : t -> scheme
val policy : t -> Mutant.policy

val domains : t -> int
(** The scoring fan-out width [create] was given (>= 1). *)

val shutdown : t -> unit
(** Join the scoring worker domains ([create ~domains] spawns them once
    and parks them between admissions).  Idempotent; afterwards scoring
    runs sequentially.  Pools left running are reaped at process exit,
    but each holds [domains - 1] live domains until then — shut down
    allocators you create in a loop. *)

val admit : ?trace:Trace.ctx -> t -> arrival -> outcome
(** [trace] hangs an [alloc.admit] span (with score/fill/outcome children)
    off the given context in the tracer passed at {!create}; omitted, the
    call emits no trace events at all.
    @raise Invalid_argument if the FID is already resident or the demand
    array does not match the spec's accesses. *)

val admit_batch : ?trace:Trace.ctx -> t -> arrival list -> batch
(** Epoch admission: score the k arrivals against one shared pool
    snapshot (memoizing the score per distinct program shape / elasticity
    / demand) and commit the compatible subset together.

    Each chosen placement is re-checked against the live pool counters
    before its commit; within an epoch resources only shrink, so only a
    snapshot-feasible choice can be invalidated by an earlier commit.  On
    such a conflict the arrival is re-scored sequentially against a fresh
    snapshot (counted in [stats.rescored]), which the rest of the epoch
    then shares.  Elastic-layout refills are coalesced to one
    [Pool.refill_elastic] per touched stage at the batch tail, and the
    reallocation diff is computed once per epoch.

    [admit_batch t [a]] makes bit-identical decisions, placements and
    reallocation reports to [admit t a] (modulo measured
    [compute_time_s]); larger batches keep admit/reject soundness (every
    commit is validated against live state) but may place differently
    than a sequential replay when arrivals contend for the same space.

    Telemetry: in addition to [admit]'s per-arrival counters, emits
    [alloc.batch.count/arrivals/memo_hits/conflicts/refills_saved]
    counters, an [alloc.admit_batch] span, and (when traced) an
    [alloc.fill] instant carrying the coalescing attributes
    ([stage_refills], [refills_saved], [rescored], [reallocated]).

    @raise Invalid_argument before any commit if an arrival's FID is
    already resident or duplicated within the batch, or a demand array
    does not match its spec. *)

val depart : ?trace:Trace.ctx -> t -> fid:int -> (int * stage_range list) list
(** Remove the app; returns the apps reallocated (expanded) as a result.
    Unknown FIDs return []. *)

val resident : t -> int list
val is_resident : t -> fid:int -> bool
val regions_of : t -> fid:int -> stage_range list option
val app_blocks : t -> fid:int -> int
(** Total blocks currently held across stages (0 if absent). *)

val utilization : t -> float
(** Allocated blocks / total blocks across all stages (Figures 6, 7a). *)

val stage_used_blocks : t -> int array

val total_blocks : t -> int
(** Device capacity in blocks ([stages x blocks_per_stage]). *)

val resident_blocks : t -> (int * int) list
(** [(fid, blocks currently held)] for every resident app, sorted by FID —
    the bulk form of {!app_blocks}, used by the tenant layer to refresh
    per-tenant accounting after elastic residents were resized. *)

val elastic_fids : t -> int list

val regions_response :
  t -> fid:int -> Activermt.Packet.region option array option
(** Word-granular regions per logical stage, as carried by allocation
    response packets. *)
