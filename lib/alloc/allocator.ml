open Import

type scheme = Worst_fit | Best_fit | First_fit | Min_realloc

let scheme_to_string = function
  | Worst_fit -> "worst-fit"
  | Best_fit -> "best-fit"
  | First_fit -> "first-fit"
  | Min_realloc -> "min-realloc"

let scheme_of_string = function
  | "worst-fit" | "wf" -> Ok Worst_fit
  | "best-fit" | "bf" -> Ok Best_fit
  | "first-fit" | "ff" -> Ok First_fit
  | "min-realloc" | "realloc" -> Ok Min_realloc
  | s -> Error (Printf.sprintf "unknown allocation scheme %S" s)

type arrival = {
  fid : int;
  spec : Spec.t;
  elastic : bool;
  demand_blocks : int array;
}

type stage_range = { stage : int; range : Pool.range }

type admitted = {
  fid : int;
  mutant : Mutant.t;
  regions : stage_range list;
  reallocated : (int * stage_range list) list;
  considered_mutants : int;
  feasible_mutants : int;
  compute_time_s : float;
}

type rejected = { considered_mutants : int; compute_time_s : float }
type outcome = Admitted of admitted | Rejected of rejected

type batch_stats = {
  batch_size : int;
  batch_admitted : int;
  batch_rejected : int;
  memo_hits : int;
  rescored : int;
  stage_refills : int;
  refills_saved : int;
  batch_compute_time_s : float;
}

type batch = {
  outcomes : outcome list;
  batch_reallocated : (int * stage_range list) list;
  stats : batch_stats;
}

type app = {
  app_fid : int;
  app_elastic : bool;
  app_mutant : Mutant.t;
  app_demand : (int * int) list;  (* merged (stage, blocks) *)
  mutable app_layout : (int * Pool.range) list;
}

type spec_key = {
  k_length : int;
  k_accesses : int array;
  k_gaps : int array;
  k_rts : int option;
}

type t = {
  params : Rmt.Params.t;
  scheme : scheme;
  policy : Mutant.policy;
  mutant_limit : int;
  pools : Pool.t array;
  apps : (int, app) Hashtbl.t;
  mutants_cache : (spec_key, Mutant.t array) Hashtbl.t;
      (* mutant sets depend only on the program shape, so the controller
         enumerates each shape once (clients cache them likewise) *)
  demand_arrays_cache : (spec_key * int array, (int array * int array) array) Hashtbl.t;
      (* per-mutant merged (stages, demands) arrays are pure in (shape,
         demand) — batched admission reuses them across every epoch
         instead of rebuilding them per scored mutant *)
  dpool : Stdx.Domain_pool.t;  (* fan-out width for mutant scoring *)
  tel : Telemetry.t;
  series : Timeseries.t;
  tracer : Trace.t;
}

let create ?(scheme = Worst_fit) ?(policy = Mutant.Most_constrained)
    ?(mutant_limit = 4096) ?(domains = 1) ?(telemetry = Telemetry.default)
    ?(series = Timeseries.noop) ?(tracer = Trace.noop) params =
  {
    params;
    scheme;
    policy;
    mutant_limit;
    pools =
      Array.init params.Rmt.Params.logical_stages (fun _ ->
          Pool.create ~total_blocks:params.Rmt.Params.blocks_per_stage);
    apps = Hashtbl.create 256;
    mutants_cache = Hashtbl.create 16;
    demand_arrays_cache = Hashtbl.create 32;
    dpool = Stdx.Domain_pool.create ~size:domains ();
    tel = telemetry;
    series;
    tracer;
  }

let mutants_of t (spec : Spec.t) =
  let key =
    {
      k_length = spec.Spec.length;
      k_accesses = spec.Spec.accesses;
      k_gaps = spec.Spec.gaps;
      k_rts = spec.Spec.rts;
    }
  in
  match Hashtbl.find_opt t.mutants_cache key with
  | Some ms ->
    Telemetry.incr t.tel "alloc.enumerate.hit";
    ms
  | None ->
    Telemetry.incr t.tel "alloc.enumerate.miss";
    let ms =
      Telemetry.with_span t.tel "alloc.enumerate" (fun () ->
          Array.of_list
            (Mutant.enumerate ~limit:t.mutant_limit t.params t.policy spec))
    in
    Hashtbl.replace t.mutants_cache key ms;
    ms

(* Per-mutant merged (stages, demands) arrays, pure in (shape, demand):
   batched admission reuses them across every epoch instead of rebuilding
   them for each of the thousands of mutants scored per arrival.  The key
   copies the demand array so a caller mutating its own array can't
   corrupt the cache. *)
let demand_arrays_of t key ~demand_blocks (mutants : Mutant.t array) =
  match Hashtbl.find_opt t.demand_arrays_cache (key, demand_blocks) with
  | Some arrs -> arrs
  | None ->
    let arrs =
      Array.map (fun m -> Mutant.demand_by_stage_arrays m ~demand_blocks) mutants
    in
    Hashtbl.replace t.demand_arrays_cache (key, Array.copy demand_blocks) arrs;
    arrs

let params t = t.params
let scheme t = t.scheme
let policy t = t.policy
let domains t = Stdx.Domain_pool.size t.dpool
let shutdown t = Stdx.Domain_pool.shutdown t.dpool
let resident t = Hashtbl.fold (fun fid _ acc -> fid :: acc) t.apps []
let is_resident t ~fid = Hashtbl.mem t.apps fid

let regions_of t ~fid =
  Option.map
    (fun app ->
      List.map (fun (stage, range) -> { stage; range }) app.app_layout
      |> List.sort (fun a b -> compare a.stage b.stage))
    (Hashtbl.find_opt t.apps fid)

let app_blocks t ~fid =
  match Hashtbl.find_opt t.apps fid with
  | None -> 0
  | Some app ->
    List.fold_left (fun acc (_, r) -> acc + r.Pool.n_blocks) 0 app.app_layout

let utilization t =
  let used = Array.fold_left (fun acc p -> acc + Pool.used_blocks p) 0 t.pools in
  let total =
    Array.length t.pools * t.params.Rmt.Params.blocks_per_stage
  in
  float_of_int used /. float_of_int total

let stage_used_blocks t = Array.map Pool.used_blocks t.pools

let total_blocks t =
  Array.length t.pools * t.params.Rmt.Params.blocks_per_stage

let resident_blocks t =
  Hashtbl.fold
    (fun fid app acc ->
      let blocks =
        List.fold_left (fun n (_, r) -> n + r.Pool.n_blocks) 0 app.app_layout
      in
      (fid, blocks) :: acc)
    t.apps []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let elastic_fids t =
  Hashtbl.fold (fun fid app acc -> if app.app_elastic then fid :: acc else acc) t.apps []

(* A conservative per-stage cap on resident apps derived from TCAM
   capacity: a protection range of width w bits expands to at most 2w - 2
   prefixes, so capacity / (2w - 2) apps always fit and installation can
   never fail after admission. *)
let max_apps_per_stage t =
  let w = t.params.Rmt.Params.mar_bits in
  max 1 (t.params.Rmt.Params.tcam_entries_per_stage / ((2 * w) - 2))

(* Per-admit snapshot of every pool's occupancy as flat int arrays
   (struct-of-arrays): O(stages) to build from the pools' O(1) counters,
   after which per-mutant feasibility and cost are pure array lookups with
   zero allocation — safe to score from any number of domains because the
   snapshot is never written during scoring. *)
type snapshot = {
  snap_fungible : int array;
  snap_slots : int array;  (* resident count per stage *)
  snap_elastic : int array;  (* elastic resident count per stage *)
  snap_max_hole : int array;  (* largest pinned-zone hole; -1 = not computed *)
}

let snapshot t ~elastic =
  let n = Array.length t.pools in
  {
    snap_fungible = Array.init n (fun s -> Pool.fungible_blocks t.pools.(s));
    snap_slots = Array.init n (fun s -> Pool.n_slots t.pools.(s));
    snap_elastic = Array.init n (fun s -> Pool.n_elastic t.pools.(s));
    (* Hole scans are O(blocks) per stage; only inelastic placement ever
       consults them. *)
    snap_max_hole =
      (if elastic then Array.make n (-1)
       else Array.init n (fun s -> Pool.max_hole t.pools.(s)));
  }

let feasible_snap snap ~max_apps ~elastic stages demands =
  let ok = ref true in
  let k = Array.length stages in
  let j = ref 0 in
  while !ok && !j < k do
    let s = stages.(!j) and d = demands.(!j) in
    ok :=
      snap.snap_slots.(s) + 1 <= max_apps
      && d > 0
      && (if elastic then snap.snap_fungible.(s) >= d
          else snap.snap_max_hole.(s) >= d || snap.snap_fungible.(s) >= d);
    incr j
  done;
  !ok

(* The same predicate read directly off the live pool counters.  Within
   an epoch, commits only consume space (no departures), so a mutant that
   scored feasible against the epoch's shared snapshot needs exactly this
   re-check before its commit: a failure means an earlier arrival in the
   batch took the space (a conflict). *)
let feasible_live t ~max_apps ~elastic stages demands =
  let ok = ref true in
  let k = Array.length stages in
  let j = ref 0 in
  while !ok && !j < k do
    let s = stages.(!j) and d = demands.(!j) in
    let pool = t.pools.(s) in
    ok :=
      Pool.n_slots pool + 1 <= max_apps
      && d > 0
      && (if elastic then Pool.fungible_blocks pool >= d
          else
            (* Counter check first: [fungible_blocks] is O(1) while
               [max_hole] rescans the block map whenever a commit has
               dirtied the pool.  Reordering a disjunction cannot change
               the result. *)
            Pool.fungible_blocks pool >= d || Pool.max_hole pool >= d);
    incr j
  done;
  !ok

(* Per-stage costs follow the paper's f(x) = g(x) . C with C >= 0, so
   using additional stages is never free: worst-fit charges a stage by how
   much of it is *not* fungible, best-fit by how much is. *)
let cost_snap snap ~scheme ~total_blocks stages =
  match scheme with
  | First_fit -> 0.0
  | Worst_fit ->
    let c = ref 0 in
    Array.iter (fun s -> c := !c + total_blocks - snap.snap_fungible.(s)) stages;
    float_of_int !c
  | Best_fit ->
    let c = ref 0 in
    Array.iter (fun s -> c := !c + snap.snap_fungible.(s)) stages;
    float_of_int !c
  | Min_realloc ->
    let c = ref 0 in
    Array.iter (fun s -> c := !c + snap.snap_elastic.(s)) stages;
    float_of_int !c

let merged_demand (a : arrival) mutant =
  Mutant.demand_by_stage mutant ~demand_blocks:a.demand_blocks

(* Snapshot the layouts of every app resident in [stages], used to diff
   out the set of reallocated apps after placement. *)
let snapshot_layouts t stages =
  Hashtbl.fold
    (fun fid app acc ->
      if List.exists (fun (s, _) -> List.mem s stages) app.app_layout then
        (fid, app.app_layout) :: acc
      else acc)
    t.apps []

let refresh_layouts t stages =
  List.iter
    (fun s ->
      let new_elastic = Pool.refill_elastic t.pools.(s) in
      List.iter
        (fun (fid, range) ->
          match Hashtbl.find_opt t.apps fid with
          | None -> ()
          | Some app ->
            app.app_layout <-
              (s, range) :: List.remove_assoc s app.app_layout)
        new_elastic)
    stages

let diff_reallocated t before =
  List.filter_map
    (fun (fid, old_layout) ->
      match Hashtbl.find_opt t.apps fid with
      | None -> None
      | Some app ->
        let changed =
          List.exists
            (fun (s, r) ->
              match List.assoc_opt s old_layout with
              | None -> true
              | Some r' -> r <> r')
            app.app_layout
          || List.length app.app_layout <> List.length old_layout
        in
        if changed then
          Some
            ( fid,
              List.map (fun (stage, range) -> { stage; range }) app.app_layout
              |> List.sort (fun a b -> compare a.stage b.stage) )
        else None)
    before

(* Score every mutant against the immutable snapshot; each index writes
   only its own cells, so the fan-out is race-free and the reduce is
   bit-identical at any pool size.  The reduce is deterministic: first-fit
   takes the lowest feasible index; the cost schemes take the minimum cost
   with ties to the lowest index — exactly the sequential fold over the
   former scored list.  Pure in the snapshot, which is what makes results
   memoizable across an epoch's arrivals. *)
let score_mutants ?arrs t snap ~elastic ~demand_blocks (mutants : Mutant.t array) =
  let considered = Array.length mutants in
  let max_apps = max_apps_per_stage t in
  let scheme = t.scheme in
  let total_blocks = t.params.Rmt.Params.blocks_per_stage in
  let feas = Array.make (max considered 1) false in
  let costs = Array.make (max considered 1) infinity in
  Stdx.Domain_pool.parallel_for t.dpool ~n:considered ~f:(fun i ->
      let stages, demands =
        match arrs with
        | Some a -> a.(i)
        | None -> Mutant.demand_by_stage_arrays mutants.(i) ~demand_blocks
      in
      if feasible_snap snap ~max_apps ~elastic stages demands then begin
        feas.(i) <- true;
        costs.(i) <- cost_snap snap ~scheme ~total_blocks stages
      end);
  let feasible_count = ref 0 in
  let best = ref (-1) in
  for i = 0 to considered - 1 do
    if feas.(i) then begin
      incr feasible_count;
      match scheme with
      | First_fit -> if !best < 0 then best := i
      | Worst_fit | Best_fit | Min_realloc ->
        if !best < 0 || costs.(i) < costs.(!best) then best := i
    end
  done;
  (!feasible_count, !best)

let admit ?trace t (a : arrival) =
  if Hashtbl.mem t.apps a.fid then
    invalid_arg (Printf.sprintf "Allocator.admit: fid %d already resident" a.fid);
  if Array.length a.demand_blocks <> Array.length a.spec.Spec.accesses then
    invalid_arg "Allocator.admit: demand_blocks does not match spec accesses";
  Trace.with_span t.tracer trace
    ~attrs:[ ("fid", string_of_int a.fid) ]
    "alloc.admit"
  @@ fun tctx ->
  let t0 = Unix.gettimeofday () in
  Telemetry.span_begin t.tel "alloc.admit";
  let mutants = mutants_of t a.spec in
  let considered = Array.length mutants in
  let snap =
    Telemetry.with_span t.tel "alloc.snapshot" (fun () ->
        snapshot t ~elastic:a.elastic)
  in
  Telemetry.span_begin t.tel "alloc.score";
  let feasible_count, best =
    score_mutants t snap ~elastic:a.elastic ~demand_blocks:a.demand_blocks
      mutants
  in
  Telemetry.span_end t.tel (* alloc.score *);
  let best = ref best in
  Telemetry.incr t.tel "alloc.mutants.considered" ~by:considered;
  Telemetry.incr t.tel "alloc.mutants.feasible" ~by:feasible_count;
  (match tctx with
  | None -> ()
  | Some c ->
    ignore
      (Trace.instant t.tracer c
         ~attrs:
           [
             ("considered", string_of_int considered);
             ("feasible", string_of_int feasible_count);
           ]
         "alloc.score"));
  match !best with
  | -1 ->
    Telemetry.incr t.tel "alloc.rejected";
    Timeseries.add t.series "alloc.rejected";
    Telemetry.span_end t.tel (* alloc.admit *);
    (match tctx with
    | None -> ()
    | Some c -> ignore (Trace.instant t.tracer c "alloc.rejected"));
    Rejected
      { considered_mutants = considered; compute_time_s = Unix.gettimeofday () -. t0 }
  | best ->
    let mutant = mutants.(best) in
    let demand = merged_demand a mutant in
    let stages = List.map fst demand in
    Telemetry.span_begin t.tel "alloc.fill";
    let before = snapshot_layouts t stages in
    let own_layout = ref [] in
    List.iter
      (fun (s, d) ->
        let pool = t.pools.(s) in
        if a.elastic then begin
          match Pool.add_elastic pool ~fid:a.fid ~min_blocks:d with
          | Ok () -> ()
          | Error `No_space -> assert false (* guarded by [feasible] *)
        end
        else begin
          match Pool.add_inelastic pool ~fid:a.fid ~blocks:d with
          | Ok range -> own_layout := (s, range) :: !own_layout
          | Error `No_space -> assert false
        end)
      demand;
    let app =
      {
        app_fid = a.fid;
        app_elastic = a.elastic;
        app_mutant = mutant;
        app_demand = demand;
        app_layout = !own_layout;
      }
    in
    Hashtbl.replace t.apps a.fid app;
    refresh_layouts t stages;
    let reallocated =
      diff_reallocated t (List.filter (fun (fid, _) -> fid <> a.fid) before)
    in
    let regions =
      List.map (fun (stage, range) -> { stage; range }) app.app_layout
      |> List.sort (fun x y -> compare x.stage y.stage)
    in
    Telemetry.span_end t.tel (* alloc.fill *);
    Telemetry.incr t.tel "alloc.admitted";
    Timeseries.add t.series "alloc.admitted";
    Telemetry.incr t.tel "alloc.reallocated" ~by:(List.length reallocated);
    Telemetry.span_end t.tel (* alloc.admit *);
    (match tctx with
    | None -> ()
    | Some c ->
      ignore
        (Trace.instant t.tracer c
           ~attrs:
             [
               ("stages", string_of_int (List.length regions));
               ("reallocated", string_of_int (List.length reallocated));
             ]
           "alloc.fill"));
    Admitted
      {
        fid = a.fid;
        mutant;
        regions;
        reallocated;
        considered_mutants = considered;
        feasible_mutants = feasible_count;
        compute_time_s = Unix.gettimeofday () -. t0;
      }

(* Layouts of every resident app, captured before an epoch's commits so
   the whole batch can be diffed with one pass at the end.  Existing apps'
   layouts only move on [refresh_layouts], which epoch admission defers to
   the batch tail, so this pre-commit capture is exactly the "before"
   state of the coalesced refill. *)
let snapshot_all_layouts t =
  Hashtbl.fold (fun fid app acc -> (fid, app.app_layout) :: acc) t.apps []

let empty_batch_stats =
  {
    batch_size = 0;
    batch_admitted = 0;
    batch_rejected = 0;
    memo_hits = 0;
    rescored = 0;
    stage_refills = 0;
    refills_saved = 0;
    batch_compute_time_s = 0.0;
  }

(* Epoch admission: score k arrivals against one shared pool snapshot and
   commit the compatible subset together.

   - Scoring is memoized per (program shape, elasticity, demand) within
     the epoch: the score is a pure function of the shared snapshot, so k
     arrivals of the same service pay for one mutant sweep instead of k.
   - Before each commit the chosen mutant is re-checked against the live
     pool counters (cheap, O(stages)).  Within an epoch resources only
     shrink — commits consume blocks and slots, nothing is freed — so a
     snapshot-infeasible arrival is live-infeasible too and rejections
     need no re-check; only a snapshot-feasible choice can be invalidated
     by an earlier commit.  On such a conflict the arrival falls back to
     the sequential path: a fresh snapshot and a full re-score, which then
     becomes the shared snapshot (memo reset) for the rest of the epoch.
   - Fills are coalesced: commits update the O(1) pool counters arrival by
     arrival (keeping the live re-checks exact), but the elastic-layout
     rematerialization ([Pool.refill_elastic]) runs once per touched stage
     at the batch tail instead of once per (arrival, stage), and the
     reallocation diff is computed once for the whole epoch.

   At batch size 1 nothing above diverges from [admit]: the snapshot is
   fresh, the memo is empty, the live re-check is vacuous, and the
   coalesced tail degenerates to the per-admit refill + diff — decisions,
   placements and reallocation reports are bit-identical (the qcheck
   differential suite in test/test_alloc.ml holds this invariant). *)
let admit_batch ?trace t arrivals =
  (* Validate everything up front so a bad arrival cannot leave the epoch
     partially committed. *)
  let batch_fids = Hashtbl.create 16 in
  List.iter
    (fun (a : arrival) ->
      if Hashtbl.mem t.apps a.fid then
        invalid_arg
          (Printf.sprintf "Allocator.admit_batch: fid %d already resident" a.fid);
      if Hashtbl.mem batch_fids a.fid then
        invalid_arg
          (Printf.sprintf "Allocator.admit_batch: fid %d appears twice in the batch"
             a.fid);
      Hashtbl.replace batch_fids a.fid ();
      if Array.length a.demand_blocks <> Array.length a.spec.Spec.accesses then
        invalid_arg "Allocator.admit_batch: demand_blocks does not match spec accesses")
    arrivals;
  let batch_size = List.length arrivals in
  if batch_size = 0 then
    { outcomes = []; batch_reallocated = []; stats = empty_batch_stats }
  else begin
    let t0 = Unix.gettimeofday () in
    Telemetry.span_begin t.tel "alloc.admit_batch";
    Trace.with_span t.tracer trace
      ~attrs:[ ("batch", string_of_int batch_size) ]
      "alloc.admit_batch"
    @@ fun tctx ->
    (* Hole scans are only needed if some arrival places inelastically. *)
    let any_inelastic = List.exists (fun a -> not a.elastic) arrivals in
    let max_apps = max_apps_per_stage t in
    let snap =
      ref
        (Telemetry.with_span t.tel "alloc.snapshot" (fun () ->
             snapshot t ~elastic:(not any_inelastic)))
    in
    (* (shape, elastic, demand) -> (mutants, arrs, considered, feasible,
       best) against the current shared snapshot. *)
    let memo = Hashtbl.create 8 in
    let memo_hits = ref 0 and rescored = ref 0 in
    let key_of (a : arrival) =
      ( {
          k_length = a.spec.Spec.length;
          k_accesses = a.spec.Spec.accesses;
          k_gaps = a.spec.Spec.gaps;
          k_rts = a.spec.Spec.rts;
        },
        a.elastic,
        a.demand_blocks )
    in
    let score (a : arrival) =
      let key = key_of a in
      match Hashtbl.find_opt memo key with
      | Some r ->
        incr memo_hits;
        r
      | None ->
        let mutants = mutants_of t a.spec in
        let skey, _, _ = key in
        let arrs =
          demand_arrays_of t skey ~demand_blocks:a.demand_blocks mutants
        in
        let feasible, best =
          Telemetry.with_span t.tel "alloc.score" (fun () ->
              score_mutants ~arrs t !snap ~elastic:a.elastic
                ~demand_blocks:a.demand_blocks mutants)
        in
        let r = (mutants, arrs, Array.length mutants, feasible, best) in
        Hashtbl.replace memo key r;
        r
    in
    let before_all = snapshot_all_layouts t in
    let n_stages = Array.length t.pools in
    let touched = Array.make n_stages false in
    let naive_refills = ref 0 in
    (* Per-arrival counters accumulate locally and flush to telemetry once
       per epoch — four hashtable updates per arrival add up at 100k+
       arrivals/s. *)
    let c_considered = ref 0 and c_feasible = ref 0 in
    let c_admitted = ref 0 and c_rejected = ref 0 in
    let pending =
      List.map
        (fun (a : arrival) ->
          let ta = Unix.gettimeofday () in
          let mutants, arrs, considered, feasible, best = score a in
          let mutants, arrs, considered, feasible, best =
            if best < 0 then (mutants, arrs, considered, feasible, best)
            else begin
              let stages, demands = arrs.(best) in
              if feasible_live t ~max_apps ~elastic:a.elastic stages demands
              then (mutants, arrs, considered, feasible, best)
              else begin
                (* Conflict: an earlier commit in this epoch consumed the
                   chosen placement.  Sequential fallback for this shape —
                   fresh snapshot, evict only the stale memo entry and
                   re-score it.  Entries for other shapes stay memoized
                   against the older (larger) snapshot: within an epoch
                   resources only shrink, so a stale choice is at worst
                   infeasible live, which this same guard catches on its
                   own commit. *)
                incr rescored;
                Telemetry.incr t.tel "alloc.batch.conflicts";
                snap := snapshot t ~elastic:(not any_inelastic);
                Hashtbl.remove memo (key_of a);
                score a
              end
            end
          in
          c_considered := !c_considered + considered;
          c_feasible := !c_feasible + feasible;
          if best < 0 then begin
            incr c_rejected;
            `Rejected
              {
                considered_mutants = considered;
                compute_time_s = Unix.gettimeofday () -. ta;
              }
          end
          else begin
            let mutant = mutants.(best) in
            (* [arrs.(best)] is [merged_demand] in array form (same
               insertion-sorted stage order, same values). *)
            let demand =
              let bstages, bdemands = arrs.(best) in
              Array.to_list (Array.mapi (fun i s -> (s, bdemands.(i))) bstages)
            in
            let own_layout = ref [] in
            List.iter
              (fun (s, d) ->
                let pool = t.pools.(s) in
                (* First commit of the epoch on this stage: withdraw the
                   stale elastic shares so the deferred refill can't leave
                   them below a rising high-water mark (the block map
                   would flag the overlap).  Decision inputs are
                   unchanged — see [Pool.unfill_elastic]. *)
                if not touched.(s) then Pool.unfill_elastic pool;
                (if a.elastic then
                   match Pool.add_elastic pool ~fid:a.fid ~min_blocks:d with
                   | Ok () -> ()
                   | Error `No_space -> assert false (* guarded by [feasible_live] *)
                 else
                   match Pool.add_inelastic pool ~fid:a.fid ~blocks:d with
                   | Ok range -> own_layout := (s, range) :: !own_layout
                   | Error `No_space -> assert false);
                touched.(s) <- true;
                incr naive_refills)
              demand;
            let app =
              {
                app_fid = a.fid;
                app_elastic = a.elastic;
                app_mutant = mutant;
                app_demand = demand;
                app_layout = !own_layout;
              }
            in
            Hashtbl.replace t.apps a.fid app;
            incr c_admitted;
            `Admitted (a, mutant, demand, considered, feasible, ta)
          end)
        arrivals
    in
    (* Coalesced tail: one elastic refill per touched stage, one layout
       diff for the whole epoch. *)
    let touched_stages = ref [] in
    for s = n_stages - 1 downto 0 do
      if touched.(s) then touched_stages := s :: !touched_stages
    done;
    let touched_stages = !touched_stages in
    let stage_refills = List.length touched_stages in
    let refills_saved = !naive_refills - stage_refills in
    Telemetry.span_begin t.tel "alloc.fill";
    refresh_layouts t touched_stages;
    let batch_reallocated = diff_reallocated t before_all in
    Telemetry.span_end t.tel (* alloc.fill *);
    let t_tail = Unix.gettimeofday () in
    let outcomes =
      List.map
        (function
          | `Rejected r -> Rejected r
          | `Admitted ((a : arrival), mutant, demand, considered, feasible, ta) ->
            let app = Hashtbl.find t.apps a.fid in
            let regions =
              List.map (fun (stage, range) -> { stage; range }) app.app_layout
              |> List.sort (fun x y -> compare x.stage y.stage)
            in
            let demand_mask = Array.make n_stages false in
            List.iter (fun (s, _) -> demand_mask.(s) <- true) demand;
            (* Attribute the epoch's reallocations to the arrivals whose
               stages they share.  At batch size 1 every diff entry lies on
               the lone arrival's stages, so this is exactly [admit]'s
               reallocated list; at larger sizes an app resized by several
               arrivals is reported to each (the controller installs the
               deduplicated union once per epoch). *)
            let reallocated =
              List.filter
                (fun (_, layout) ->
                  List.exists (fun sr -> demand_mask.(sr.stage)) layout)
                batch_reallocated
            in
            Admitted
              {
                fid = a.fid;
                mutant;
                regions;
                reallocated;
                considered_mutants = considered;
                feasible_mutants = feasible;
                compute_time_s = t_tail -. ta;
              })
        pending
    in
    let batch_admitted =
      List.fold_left
        (fun n -> function Admitted _ -> n + 1 | Rejected _ -> n)
        0 outcomes
    in
    let stats =
      {
        batch_size;
        batch_admitted;
        batch_rejected = batch_size - batch_admitted;
        memo_hits = !memo_hits;
        rescored = !rescored;
        stage_refills;
        refills_saved;
        batch_compute_time_s = Unix.gettimeofday () -. t0;
      }
    in
    Telemetry.incr t.tel "alloc.mutants.considered" ~by:!c_considered;
    Telemetry.incr t.tel "alloc.mutants.feasible" ~by:!c_feasible;
    Telemetry.incr t.tel "alloc.admitted" ~by:!c_admitted;
    Telemetry.incr t.tel "alloc.rejected" ~by:!c_rejected;
    Timeseries.add t.series ~by:(float_of_int !c_admitted) "alloc.admitted";
    Timeseries.add t.series ~by:(float_of_int !c_rejected) "alloc.rejected";
    Telemetry.incr t.tel "alloc.batch.count";
    Telemetry.incr t.tel "alloc.batch.arrivals" ~by:batch_size;
    Telemetry.incr t.tel "alloc.batch.memo_hits" ~by:!memo_hits;
    Telemetry.incr t.tel "alloc.batch.refills_saved" ~by:refills_saved;
    Telemetry.incr t.tel "alloc.reallocated"
      ~by:(List.length batch_reallocated);
    Telemetry.span_end t.tel (* alloc.admit_batch *);
    (match tctx with
    | None -> ()
    | Some c ->
      ignore
        (Trace.instant t.tracer c
           ~attrs:
             [
               ("batch", string_of_int batch_size);
               ("admitted", string_of_int batch_admitted);
               ("stage_refills", string_of_int stage_refills);
               ("refills_saved", string_of_int refills_saved);
               ("rescored", string_of_int !rescored);
               ("reallocated", string_of_int (List.length batch_reallocated));
             ]
           "alloc.fill"));
    { outcomes; batch_reallocated; stats }
  end

let depart ?trace t ~fid =
  match Hashtbl.find_opt t.apps fid with
  | None -> []
  | Some app ->
    Trace.with_span t.tracer trace
      ~attrs:[ ("fid", string_of_int fid) ]
      "alloc.depart"
    @@ fun _tctx ->
    Telemetry.with_span t.tel "alloc.depart" (fun () ->
        Telemetry.incr t.tel "alloc.departed";
        let stages = List.map fst app.app_demand in
        let before = snapshot_layouts t stages in
        (* The app only ever holds blocks on its demand stages. *)
        List.iter (fun s -> ignore (Pool.remove t.pools.(s) ~fid)) stages;
        Hashtbl.remove t.apps fid;
        refresh_layouts t stages;
        let expanded =
          diff_reallocated t (List.filter (fun (f, _) -> f <> fid) before)
        in
        Telemetry.incr t.tel "alloc.reallocated" ~by:(List.length expanded);
        expanded)

let regions_response t ~fid =
  match Hashtbl.find_opt t.apps fid with
  | None -> None
  | Some app ->
    let n = t.params.Rmt.Params.logical_stages in
    let wpb = Rmt.Params.words_per_block t.params in
    let out = Array.make n None in
    List.iter
      (fun (s, r) ->
        out.(s) <-
          Some
            {
              Activermt.Packet.start_word = r.Pool.first_block * wpb;
              n_words = r.Pool.n_blocks * wpb;
            })
      app.app_layout;
    Some out
