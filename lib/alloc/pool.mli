(** One logical stage's memory pool, divided into fixed-size blocks
    (Section 4.1; 256 blocks per stage by default).

    Inelastic applications are pinned to the beginning of the pool and are
    never moved; when they depart they may leave holes (the fragmentation
    the paper accepts).  New inelastic apps fill the first hole that fits,
    or extend the pinned zone.  Elastic applications share the remainder
    above the pinned zone's high-water mark by progressive filling
    (max-min fair with per-app minimums, integer blocks), packed
    contiguously in arrival order. *)

type range = { first_block : int; n_blocks : int }

val range_end : range -> int
(** One past the last block. *)

type slot = { fid : int; range : range; min_blocks : int; elastic : bool }

type t

val create : total_blocks:int -> t
val total_blocks : t -> int
val high_water : t -> int
(** Top of the pinned (inelastic) zone.  O(1): maintained as a counter on
    add/remove, like [used_blocks], [n_slots] and [elastic_min_total]. *)

val used_blocks : t -> int
val slots : t -> slot list
(** All resident slots, inelastic first (by address), then elastic (by
    arrival). *)

val slot_of : t -> fid:int -> slot option
val n_elastic : t -> int
val n_slots : t -> int
(** Total resident slots, inelastic plus elastic. *)

val elastic_min_total : t -> int

val fungible_blocks : t -> int
(** Free blocks plus blocks elastic residents could yield while keeping
    their minimums: total - high_water - sum of elastic minimums.  The
    cost metric behind worst-fit/best-fit (Section 4.2). *)

val max_hole : t -> int
(** Largest free hole inside the pinned zone (0 when none) — with
    [fungible_blocks], everything admission feasibility needs; snapshotted
    once per arrival by the allocator's fast path. *)

val can_fit_inelastic : t -> blocks:int -> bool
(** Is there a hole or enough fungible headroom for a pinned region? *)

val can_fit_elastic : t -> min_blocks:int -> bool

val add_inelastic : t -> fid:int -> blocks:int -> (range, [ `No_space ]) result
(** Place and pin; does not touch elastic residents (call
    [refill_elastic] afterwards to shrink them around the new zone). *)

val add_elastic : t -> fid:int -> min_blocks:int -> (unit, [ `No_space ]) result
(** Register an elastic resident; its region materializes on
    [refill_elastic]. *)

val remove : t -> fid:int -> bool
(** Remove a resident; true if it was present. *)

val unfill_elastic : t -> unit
(** Withdraw every elastic share (ranges zeroed, counters adjusted) until
    the next {!refill_elastic} recomputes them.  Batched admission calls
    this on a stage's first commit of an epoch so deferred refills can't
    leave stale elastic ranges below a rising high-water mark, where the
    block map would flag them as overlaps.  No decision input changes:
    feasibility reads counters and hole scans stop at the high-water
    mark. *)

val refill_elastic : t -> (int * range) list
(** Recompute elastic shares by progressive filling and repack them above
    the high-water mark.  Returns the new (fid, range) layout of all
    elastic residents. *)

val map : t -> int array
(** The per-block ownership map (block index -> fid, -1 when free),
    rebuilt from the slot state on demand.
    @raise Invalid_argument if two residents overlap — the allocator's
    central safety invariant. *)
