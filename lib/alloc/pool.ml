type range = { first_block : int; n_blocks : int }

let range_end r = r.first_block + r.n_blocks

type slot = { fid : int; range : range; min_blocks : int; elastic : bool }

type islot = { ifid : int; mutable irange : range }
type eslot = { efid : int; emin : int; mutable erange : range }

(* [c_*] counters mirror folds over the slot lists so the admission fast
   path reads occupancy in O(1); they are maintained on every mutation and
   the tests re-derive them from [slots] as oracles. *)
type t = {
  total : int;
  mutable inelastic : islot list;  (* sorted by first_block *)
  mutable elastic : eslot list;  (* arrival order *)
  map : int array;  (* block -> owning fid, or -1: the block-granular
                       bookkeeping a real controller maintains *)
  mutable dirty : bool;
  mutable c_pinned : int;  (* sum of inelastic n_blocks *)
  mutable c_eblocks : int;  (* sum of elastic n_blocks (current shares) *)
  mutable c_hw : int;  (* max range_end over inelastic *)
  mutable c_emin : int;  (* sum of elastic minimums *)
  mutable c_n_inelastic : int;
  mutable c_n_elastic : int;
}

let create ~total_blocks =
  if total_blocks <= 0 then invalid_arg "Pool.create: total_blocks must be positive";
  {
    total = total_blocks;
    inelastic = [];
    elastic = [];
    map = Array.make total_blocks (-1);
    dirty = false;
    c_pinned = 0;
    c_eblocks = 0;
    c_hw = 0;
    c_emin = 0;
    c_n_inelastic = 0;
    c_n_elastic = 0;
  }

let rebuild_map t =
  Array.fill t.map 0 t.total (-1);
  let paint fid r =
    for b = r.first_block to r.first_block + r.n_blocks - 1 do
      if t.map.(b) <> -1 then
        invalid_arg
          (Printf.sprintf "Pool: overlapping allocation at block %d (fids %d, %d)"
             b t.map.(b) fid);
      t.map.(b) <- fid
    done
  in
  List.iter (fun s -> paint s.ifid s.irange) t.inelastic;
  List.iter (fun s -> if s.erange.n_blocks > 0 then paint s.efid s.erange) t.elastic;
  t.dirty <- false

let map t =
  if t.dirty then rebuild_map t;
  t.map

let total_blocks t = t.total
let high_water t = t.c_hw
let elastic_min_total t = t.c_emin
let n_elastic t = t.c_n_elastic
let n_slots t = t.c_n_inelastic + t.c_n_elastic
let used_blocks t = t.c_pinned + t.c_eblocks

let slots t =
  List.map
    (fun s ->
      { fid = s.ifid; range = s.irange; min_blocks = s.irange.n_blocks; elastic = false })
    t.inelastic
  @ List.map
      (fun s -> { fid = s.efid; range = s.erange; min_blocks = s.emin; elastic = true })
      t.elastic

let slot_of t ~fid =
  List.find_opt (fun s -> s.fid = fid) (slots t)

let fungible_blocks t = t.total - t.c_hw - t.c_emin

(* Holes inside the pinned zone, found by scanning the block map up to the
   high-water mark — O(blocks), the honest cost of block-granular
   bookkeeping (Section 6.4's granularity/time trade-off). *)
let holes t =
  let m = map t in
  let hw = high_water t in
  (* Elastic regions live at or above the high-water mark, so below it a
     block is either pinned or free. *)
  let pinned b = m.(b) <> -1 in
  let out = ref [] in
  let start = ref (-1) in
  for b = 0 to hw - 1 do
    if not (pinned b) then begin
      if !start < 0 then start := b
    end
    else if !start >= 0 then begin
      out := (!start, b - !start) :: !out;
      start := -1
    end
  done;
  if !start >= 0 then out := (!start, hw - !start) :: !out;
  List.rev !out

let max_hole t = List.fold_left (fun acc (_, gap) -> max acc gap) 0 (holes t)

let can_fit_inelastic t ~blocks =
  blocks > 0
  && (List.exists (fun (_, gap) -> gap >= blocks) (holes t)
     || fungible_blocks t >= blocks)

let can_fit_elastic t ~min_blocks =
  min_blocks > 0 && fungible_blocks t >= min_blocks

let insert_sorted slot slots =
  let rec go = function
    | [] -> [ slot ]
    | s :: rest ->
      if slot.irange.first_block < s.irange.first_block then slot :: s :: rest
      else s :: go rest
  in
  go slots

let add_inelastic t ~fid ~blocks =
  if blocks <= 0 then invalid_arg "Pool.add_inelastic: blocks must be positive";
  let place first_block =
    let r = { first_block; n_blocks = blocks } in
    t.inelastic <- insert_sorted { ifid = fid; irange = r } t.inelastic;
    t.c_pinned <- t.c_pinned + blocks;
    t.c_hw <- max t.c_hw (range_end r);
    t.c_n_inelastic <- t.c_n_inelastic + 1;
    t.dirty <- true;
    Ok r
  in
  match List.find_opt (fun (_, gap) -> gap >= blocks) (holes t) with
  | Some (start, _) -> place start
  | None ->
    if fungible_blocks t >= blocks then place (high_water t) else Error `No_space

let add_elastic t ~fid ~min_blocks =
  if min_blocks <= 0 then invalid_arg "Pool.add_elastic: min_blocks must be positive";
  if fungible_blocks t >= min_blocks then begin
    t.elastic <-
      t.elastic @ [ { efid = fid; emin = min_blocks; erange = { first_block = 0; n_blocks = 0 } } ];
    t.c_emin <- t.c_emin + min_blocks;
    t.c_n_elastic <- t.c_n_elastic + 1;
    t.dirty <- true;
    Ok ()
  end
  else Error `No_space

let remove t ~fid =
  let had = ref false in
  t.inelastic <-
    List.filter
      (fun s ->
        if s.ifid = fid then begin
          had := true;
          t.c_pinned <- t.c_pinned - s.irange.n_blocks;
          t.c_n_inelastic <- t.c_n_inelastic - 1;
          false
        end
        else true)
      t.inelastic;
  t.elastic <-
    List.filter
      (fun s ->
        if s.efid = fid then begin
          had := true;
          t.c_eblocks <- t.c_eblocks - s.erange.n_blocks;
          t.c_emin <- t.c_emin - s.emin;
          t.c_n_elastic <- t.c_n_elastic - 1;
          false
        end
        else true)
      t.elastic;
  (* The high-water mark can drop when a pinned resident leaves; departures
     are rare relative to O(1) reads, so re-fold it here. *)
  t.c_hw <- List.fold_left (fun acc s -> max acc (range_end s.irange)) 0 t.inelastic;
  t.dirty <- true;
  !had

(* Max-min fair shares with minimums over [budget] blocks: water-fill,
   then hand out integer remainders in arrival order. *)
let progressive_fill mins budget =
  let k = Array.length mins in
  if k = 0 then [||]
  else begin
    let shares = Array.map float_of_int mins in
    let fixed = Array.make k false in
    let rec fill () =
      let flexible = ref [] in
      Array.iteri (fun i f -> if not f then flexible := i :: !flexible) fixed;
      match !flexible with
      | [] -> ()
      | flex ->
        let reserved =
          Array.to_list shares
          |> List.mapi (fun i s -> if fixed.(i) then s else 0.0)
          |> List.fold_left ( +. ) 0.0
        in
        let level = (float_of_int budget -. reserved) /. float_of_int (List.length flex) in
        let violators = List.filter (fun i -> float_of_int mins.(i) > level) flex in
        if violators = [] then List.iter (fun i -> shares.(i) <- level) flex
        else begin
          List.iter
            (fun i ->
              shares.(i) <- float_of_int mins.(i);
              fixed.(i) <- true)
            violators;
          fill ()
        end
    in
    fill ();
    (* Integer rounding: floors first, then the remainder one block at a
       time in arrival order — but only to apps at the water level
       (giving a remainder block to an app pinned at its minimum would
       push it above flexible apps and break max-min fairness). *)
    let out = Array.map (fun s -> int_of_float (floor s)) shares in
    let spent = Array.fold_left ( + ) 0 out in
    let leftover = ref (budget - spent) in
    let give eligible =
      let i = ref 0 in
      while !leftover > 0 && !i < k do
        if eligible !i then begin
          out.(!i) <- out.(!i) + 1;
          decr leftover
        end;
        incr i
      done
    in
    give (fun i -> not fixed.(i));
    give (fun _ -> true);
    out
  end

(* Batched admission commits several arrivals before re-packing elastic
   layouts: a commit that raises the high-water mark would make the block
   map's stale elastic ranges (from the last refill, below the new mark)
   look like overlaps.  Withdrawing the shares keeps the map consistent
   without changing any decision input — feasibility reads counters, and
   hole scans only look below the high-water mark, where elastic apps
   never hold blocks.  The next [refill_elastic] recomputes every share
   from scratch. *)
let unfill_elastic t =
  List.iter (fun s -> s.erange <- { first_block = 0; n_blocks = 0 }) t.elastic;
  t.c_eblocks <- 0;
  t.dirty <- true

let refill_elastic t =
  let apps = Array.of_list t.elastic in
  let mins = Array.map (fun s -> s.emin) apps in
  let budget = t.total - high_water t in
  let shares = progressive_fill mins budget in
  let cursor = ref (high_water t) in
  Array.iteri
    (fun i s ->
      s.erange <- { first_block = !cursor; n_blocks = shares.(i) };
      cursor := !cursor + shares.(i))
    apps;
  t.c_eblocks <- Array.fold_left ( + ) 0 shares;
  t.dirty <- true;
  ignore (map t);
  Array.to_list (Array.map (fun s -> (s.efid, s.erange)) apps)
