(* Short aliases for the compiler library's modules used throughout the
   allocator. *)
module Spec = Activermt_compiler.Spec
module Mutant = Activermt_compiler.Mutant
module Telemetry = Activermt_telemetry.Telemetry
module Timeseries = Activermt_telemetry.Timeseries
module Trace = Activermt_telemetry.Trace
