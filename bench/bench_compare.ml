(* CI bench-regression gate: compare a fresh BENCH_alloc.json against the
   committed bench/baseline_alloc.json and fail (exit 1) when admit
   throughput drops by more than the tolerance or p99 latency grows past
   the allowed factor.

     bench_compare.exe BASELINE CURRENT [--max-tput-drop 0.30] [--max-p99-growth 2.0]

   Records are matched per workload at single-domain and fanned-out
   configurations separately ("d1" vs "dN" — the fan-out width differs
   across machines, so the multi-domain record matches whatever width the
   current run used).  Wide default tolerances absorb runner-speed noise;
   the gate exists to catch order-of-magnitude regressions, not 5%
   jitter.

   Candidate-only material is informational, never a failure: fastpath
   records with no matching baseline config and top-level sections the
   baseline lacks (e.g. a newly added "fleet" section) print as INFO
   lines, so new bench entries can land before the baseline is
   refreshed.  Only regressed or missing *common* entries gate. *)

module Json = Activermt_telemetry.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("bench_compare: " ^ s); exit 2) fmt

let load path =
  let ic = try open_in path with Sys_error e -> die "%s" e in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  match Json.of_string text with
  | Ok v -> v
  | Error e -> die "%s: %s" path e

type record = {
  workload : string;
  domains : int;
  arrivals_per_sec : float;
  p99_ms : float;
}

let records_of path json =
  match Json.(member "fastpath" json |> Option.map to_arr) with
  | Some (Some items) ->
    List.map
      (fun item ->
        let num key =
          match Json.(member key item |> Option.map to_num) with
          | Some (Some v) -> v
          | _ -> die "%s: fastpath record missing %S" path key
        in
        let workload =
          match Json.(member "workload" item |> Option.map to_str) with
          | Some (Some w) -> w
          | _ -> die "%s: fastpath record missing \"workload\"" path
        in
        {
          workload;
          domains = int_of_float (num "domains");
          arrivals_per_sec = num "arrivals_per_sec";
          p99_ms = num "p99_ms";
        })
      items
  | _ -> die "%s: no \"fastpath\" array" path

(* d1 is comparable across machines; any width > 1 is "the fan-out
   config" whatever the core count of the box that produced it. *)
let config r = (r.workload, r.domains <= 1)

(* The device section (interpreter vs JIT exec throughput).  Raw pkt/s
   moves with the runner, but the *speedup* is a ratio of two
   measurements on the same box, so it gates tightly: each workload's
   speedup may not drop below (1 - max_drop) x baseline, and the mixed
   workload must additionally clear the absolute [min_speedup] the bench
   promises (the PR's >= 5x acceptance gate). *)
let device_rows json =
  match Json.member "device" json with
  | None -> None
  | Some section ->
    let rows =
      match Json.(member "workloads" section |> Option.map to_arr) with
      | Some (Some items) ->
        List.filter_map
          (fun item ->
            match
              ( Json.(member "workload" item |> Option.map to_str),
                Json.(member "speedup" item |> Option.map to_num) )
            with
            | Some (Some w), Some (Some s) -> Some (w, s)
            | _ -> None)
          items
      | _ -> []
    in
    let min_speedup =
      match Json.(member "min_speedup" section |> Option.map to_num) with
      | Some (Some v) -> v
      | _ -> 0.0
    in
    Some (min_speedup, rows)

let compare_device ~max_drop ~failures base_json cur_json =
  match (device_rows base_json, device_rows cur_json) with
  | Some (_, base_rows), Some (min_speedup, cur_rows) ->
    List.iter
      (fun (workload, b) ->
        match List.assoc_opt workload cur_rows with
        | None ->
          incr failures;
          Printf.printf "MISSING  device %-6s  no matching workload in candidate\n"
            workload
        | Some c ->
          let floor = (1.0 -. max_drop) *. b in
          let floor = if workload = "mixed" then Float.max floor min_speedup else floor in
          let ok = c >= floor in
          if not ok then incr failures;
          Printf.printf "%-7s  device %-6s  jit speedup %5.2fx -> %5.2fx (floor %5.2fx)\n"
            (if ok then "OK" else "REGRESS")
            workload b c floor)
      base_rows
  | None, Some (min_speedup, cur_rows) ->
    (* New section: no baseline yet, but the absolute gate still holds. *)
    List.iter
      (fun (workload, c) ->
        if workload = "mixed" && c < min_speedup then begin
          incr failures;
          Printf.printf "REGRESS  device %-6s  jit speedup %5.2fx below %.1fx gate\n"
            workload c min_speedup
        end)
      cur_rows
  | _, None -> ()

(* The churn section (batched epoch admission at scale).  Three gated
   metrics:
   - batch_speedup: batched-vs-sequential ratio measured on one box (like
     the device speedup) — may not drop below (1 - max_drop) x baseline,
     and must always clear the absolute [min_batch_speedup] the bench
     promises (the PR's >= 10x acceptance gate), baseline or not;
   - p99_tts_ms: modeled p99 time-to-service.  It comes off the
     deterministic virtual clock, so unlike wall-clock p99s it is
     machine-independent; growth past [max_growth] x baseline fails;
   - batched_arrivals_per_sec: measured throughput, floored like the
     fastpath rows. *)
let churn_row json =
  match Json.member "churn" json with
  | None -> None
  | Some section ->
    let num key =
      match Json.(member key section |> Option.map to_num) with
      | Some (Some v) -> Some v
      | _ -> None
    in
    Some
      ( Option.value ~default:0.0 (num "min_batch_speedup"),
        num "batch_speedup",
        num "p99_tts_ms",
        num "batched_arrivals_per_sec" )

let compare_churn ~max_drop ~max_growth ~failures base_json cur_json =
  let gate name ok fmt =
    Printf.ksprintf
      (fun detail ->
        if not ok then incr failures;
        Printf.printf "%-7s  churn  %-22s %s\n"
          (if ok then "OK" else "REGRESS")
          name detail)
      fmt
  in
  let missing name =
    incr failures;
    Printf.printf "MISSING  churn  %-22s absent from candidate section\n" name
  in
  match (churn_row base_json, churn_row cur_json) with
  | Some (_, b_speed, b_p99, b_tput), Some (min_speedup, c_speed, c_p99, c_tput)
    ->
    (match c_speed with
    | None -> missing "batch_speedup"
    | Some c ->
      let floor =
        Float.max min_speedup
          (match b_speed with
          | Some b -> (1.0 -. max_drop) *. b
          | None -> 0.0)
      in
      gate "batch_speedup" (c >= floor) "%5.2fx (floor %5.2fx)" c floor);
    (match c_p99 with
    | None -> missing "p99_tts_ms"
    | Some c ->
      (match b_p99 with
      | Some b ->
        let ceil = max_growth *. b in
        gate "p99_tts_ms" (c <= ceil) "%8.3f -> %8.3f ms (ceil %8.3f)" b c ceil
      | None -> ()));
    (match (c_tput, b_tput) with
    | None, _ -> missing "batched_arrivals_per_sec"
    | Some c, Some b ->
      let floor = (1.0 -. max_drop) *. b in
      gate "batched_arrivals_per_sec" (c >= floor)
        "%9.1f -> %9.1f /s (floor %9.1f)" b c floor
    | Some _, None -> ())
  | None, Some (min_speedup, c_speed, _, _) ->
    (* New section: no baseline yet, but the absolute speedup gate still
       holds, exactly like a device section landing for the first time. *)
    (match c_speed with
    | Some c when c < min_speedup ->
      incr failures;
      Printf.printf "REGRESS  churn  batch_speedup %5.2fx below %.1fx gate\n" c
        min_speedup
    | _ -> ())
  | _, None -> ()

(* The tenants section (multi-tenant fairness under a noisy neighbor).
   Per tenant-count row:
   - jain_wb and min_retained_wb gate against the absolute floors the
     section itself declares (min_jain / min_retained) — they come off
     the deterministic modeled clock, so they hold baseline or not,
     exactly like the churn section's absolute speedup gate;
   - the zero-FID-loss audit flag must be 1;
   - p99_admit_ms is modeled (machine-independent): growth past
     [max_growth] x the matching baseline row fails. *)
let tenant_rows json =
  match Json.member "tenants" json with
  | None -> None
  | Some section ->
    let floor key =
      match Json.(member key section |> Option.map to_num) with
      | Some (Some v) -> v
      | _ -> 0.0
    in
    let rows =
      match Json.(member "sweep" section |> Option.map to_arr) with
      | Some (Some items) ->
        List.filter_map
          (fun item ->
            let num key =
              match Json.(member key item |> Option.map to_num) with
              | Some (Some v) -> Some v
              | _ -> None
            in
            match num "tenants" with
            | Some n ->
              Some
                ( int_of_float n,
                  num "jain_wb",
                  num "min_retained_wb",
                  num "p99_admit_ms",
                  num "consistent" )
            | None -> None)
          items
      | _ -> []
    in
    Some (floor "min_jain", floor "min_retained", rows)

let compare_tenants ~max_growth ~failures base_json cur_json =
  match tenant_rows cur_json with
  | None -> ()
  | Some (min_jain, min_retained, cur_rows) ->
    let base_rows =
      match tenant_rows base_json with Some (_, _, r) -> r | None -> []
    in
    let gate n name ok fmt =
      Printf.ksprintf
        (fun detail ->
          if not ok then incr failures;
          Printf.printf "%-7s  tenants t%-4d %-16s %s\n"
            (if ok then "OK" else "REGRESS")
            n name detail)
        fmt
    in
    List.iter
      (fun (n, jain, retained, p99, consistent) ->
        (match jain with
        | Some j -> gate n "jain_wb" (j >= min_jain) "%.4f (floor %.2f)" j min_jain
        | None ->
          incr failures;
          Printf.printf "MISSING  tenants t%-4d jain_wb absent\n" n);
        (match retained with
        | Some r ->
          gate n "min_retained_wb" (r >= min_retained) "%.4f (floor %.2f)" r
            min_retained
        | None ->
          incr failures;
          Printf.printf "MISSING  tenants t%-4d min_retained_wb absent\n" n);
        (match consistent with
        | Some c -> gate n "fid_audit" (c = 1.0) "%s" (if c = 1.0 then "clean" else "FAILED")
        | None -> ());
        match
          ( p99,
            List.find_opt (fun (bn, _, _, _, _) -> bn = n) base_rows )
        with
        | Some c, Some (_, _, _, Some b, _) ->
          let ceil = max_growth *. b in
          gate n "p99_admit_ms" (c <= ceil) "%8.3f -> %8.3f ms (ceil %8.3f)" b c
            ceil
        | _ -> ())
      cur_rows;
    List.iter
      (fun (bn, _, _, _, _) ->
        if not (List.exists (fun (n, _, _, _, _) -> n = bn) cur_rows) then
          Printf.printf
            "INFO     tenants t%-4d in baseline but not candidate (quick mode?)\n"
            bn)
      base_rows

(* The fleetscale section (planet-scale fat-tree fleet).  Absolute gates
   hold baseline or not, exactly like the tenants floors:
   - zero FID loss through the rolling pod failure ([lost] == 0 and the
     [consistent] audit == 1);
   - the link-flap repair stays under the [max_flap_frac] ceiling the
     section itself declares (deterministic: touched / routed pairs).
   Baseline-relative gates:
   - [concurrent] admitted services may not drop below
     (1 - max_drop) x baseline;
   - [place_p99_us] is wall-clock derived, so it gets the loose
     [max_growth] ceiling like the fastpath p99 rows. *)
let fleetscale_row json =
  match Json.member "fleetscale" json with
  | None -> None
  | Some section ->
    let num key =
      match Json.(member key section |> Option.map to_num) with
      | Some (Some v) -> Some v
      | _ -> None
    in
    Some
      ( num "concurrent",
        num "lost",
        num "consistent",
        num "flap_frac",
        num "max_flap_frac",
        num "place_p99_us" )

let compare_fleetscale ~max_drop ~max_growth ~failures base_json cur_json =
  match fleetscale_row cur_json with
  | None -> ()
  | Some (c_conc, c_lost, c_cons, c_frac, c_max_frac, c_p99) ->
    let gate name ok fmt =
      Printf.ksprintf
        (fun detail ->
          if not ok then incr failures;
          Printf.printf "%-7s  fleetscale  %-16s %s\n"
            (if ok then "OK" else "REGRESS")
            name detail)
        fmt
    in
    let missing name =
      incr failures;
      Printf.printf "MISSING  fleetscale  %-16s absent from candidate section\n"
        name
    in
    (match c_lost with
    | None -> missing "lost"
    | Some l -> gate "lost" (l = 0.0) "%.0f FIDs" l);
    (match c_cons with
    | None -> missing "consistent"
    | Some c ->
      gate "fid_audit" (c = 1.0) "%s" (if c = 1.0 then "clean" else "FAILED"));
    (match c_frac with
    | None -> missing "flap_frac"
    | Some f ->
      let ceil = Option.value ~default:0.05 c_max_frac in
      gate "flap_frac" (f <= ceil) "%.4f%% (ceil %.1f%%)" (100.0 *. f)
        (100.0 *. ceil));
    (match fleetscale_row base_json with
    | None -> ()
    | Some (b_conc, _, _, _, _, b_p99) ->
      (match (c_conc, b_conc) with
      | Some c, Some b ->
        let floor = (1.0 -. max_drop) *. b in
        gate "concurrent" (c >= floor) "%.0f -> %.0f services (floor %.0f)" b c
          floor
      | None, Some _ -> missing "concurrent"
      | _ -> ());
      match (c_p99, b_p99) with
      | Some c, Some b ->
        let ceil = max_growth *. b in
        gate "place_p99_us" (c <= ceil) "%8.1f -> %8.1f us (ceil %8.1f)" b c
          ceil
      | _ -> ())

(* The health section (recording overhead).  Wall times move with the
   runner, but overhead_frac is a ratio of two measurements on the same
   box, so it gates absolutely against the ceiling the section itself
   declares — like the fleetscale flap_frac gate.  The decision audit
   and the no-page check are deterministic and gate absolutely too. *)
let health_row json =
  match Json.member "health" json with
  | None -> None
  | Some section ->
    let num key =
      match Json.(member key section |> Option.map to_num) with
      | Some (Some v) -> Some v
      | _ -> None
    in
    Some
      ( num "overhead_frac",
        num "max_overhead",
        num "decisions_identical",
        num "pages" )

let compare_health ~failures base_json cur_json =
  match health_row cur_json with
  | None -> ()
  | Some (c_frac, c_max, c_ident, c_pages) ->
    let gate name ok fmt =
      Printf.ksprintf
        (fun detail ->
          if not ok then incr failures;
          Printf.printf "%-7s  health      %-16s %s\n"
            (if ok then "OK" else "REGRESS")
            name detail)
        fmt
    in
    let missing name =
      incr failures;
      Printf.printf "MISSING  health      %-16s absent from candidate section\n"
        name
    in
    (match c_frac with
    | None -> missing "overhead_frac"
    | Some f ->
      let ceil = Option.value ~default:0.05 c_max in
      gate "overhead_frac" (f <= ceil) "%.2f%% (ceil %.0f%%)" (100.0 *. f)
        (100.0 *. ceil));
    (match c_ident with
    | None -> missing "decisions"
    | Some d ->
      gate "decisions" (d = 1.0) "%s"
        (if d = 1.0 then "identical with recording on" else "DIVERGED"));
    (match c_pages with
    | None -> missing "pages"
    | Some p -> gate "pages" (p = 0.0) "%.0f on the healthy workload" p);
    if health_row base_json = None then
      Printf.printf "INFO     health      new section (no baseline)\n"

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse paths drop growth = function
    | [] -> (List.rev paths, drop, growth)
    | "--max-tput-drop" :: v :: rest -> parse paths (float_of_string v) growth rest
    | "--max-p99-growth" :: v :: rest -> parse paths drop (float_of_string v) rest
    | p :: rest -> parse (p :: paths) drop growth rest
  in
  let paths, max_drop, max_growth = parse [] 0.30 2.0 args in
  let base_path, cur_path =
    match paths with
    | [ b; c ] -> (b, c)
    | _ -> die "usage: bench_compare.exe BASELINE CURRENT [--max-tput-drop F] [--max-p99-growth F]"
  in
  let base_json = load base_path in
  let cur_json = load cur_path in
  let base = records_of base_path base_json in
  let cur = records_of cur_path cur_json in
  let failures = ref 0 in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> config c = config b) cur with
      | None ->
        incr failures;
        Printf.printf "MISSING  %-6s d%-2d  no matching record in %s\n" b.workload
          b.domains cur_path
      | Some c ->
        let tput_floor = (1.0 -. max_drop) *. b.arrivals_per_sec in
        let p99_ceil = max_growth *. b.p99_ms in
        let tput_ok = c.arrivals_per_sec >= tput_floor in
        let p99_ok = c.p99_ms <= p99_ceil in
        if not (tput_ok && p99_ok) then incr failures;
        Printf.printf
          "%-7s  %-6s d%-2d  tput %9.1f -> %9.1f /s (floor %9.1f)  p99 %7.3f -> %7.3f ms (ceil %7.3f)\n"
          (if tput_ok && p99_ok then "OK" else "REGRESS")
          b.workload b.domains b.arrivals_per_sec c.arrivals_per_sec tput_floor
          b.p99_ms c.p99_ms p99_ceil)
    base;
  compare_device ~max_drop ~failures base_json cur_json;
  compare_churn ~max_drop ~max_growth ~failures base_json cur_json;
  compare_tenants ~max_growth ~failures base_json cur_json;
  compare_fleetscale ~max_drop ~max_growth ~failures base_json cur_json;
  compare_health ~failures base_json cur_json;
  (* Candidate-only entries: new configurations the baseline doesn't
     know yet.  Report, don't gate. *)
  List.iter
    (fun c ->
      if not (List.exists (fun b -> config b = config c) base) then
        Printf.printf "INFO     %-6s d%-2d  new entry (no baseline): tput %9.1f /s  p99 %7.3f ms\n"
          c.workload c.domains c.arrivals_per_sec c.p99_ms)
    cur;
  (match (Json.to_obj cur_json, Json.to_obj base_json) with
  | Some cur_fields, Some base_fields ->
    List.iter
      (fun (key, _) ->
        if not (List.mem_assoc key base_fields) then
          Printf.printf "INFO     new section %S (no baseline counterpart)\n" key)
      cur_fields;
    (* The mirror image: a baseline section the candidate run silently
       dropped — usually a bench entry that wasn't selected.  Surface
       it so the omission is a deliberate choice, not an accident. *)
    List.iter
      (fun (key, _) ->
        if not (List.mem_assoc key cur_fields) then
          Printf.printf
            "INFO     baseline section %S missing from candidate (bench entry not run?)\n"
            key)
      base_fields
  | _ -> ());
  if !failures > 0 then begin
    Printf.printf "%d regression(s) against %s\n" !failures base_path;
    exit 1
  end;
  Printf.printf "no regressions against %s (tput drop <= %.0f%%, p99 growth <= %.1fx)\n"
    base_path (100.0 *. max_drop) max_growth
