(* Health-plane overhead benchmark (the BENCH_alloc.json "health"
   section): the mixed Zipf churn workload runs twice — once with the
   series registry disabled (Timeseries.noop, the production default)
   and once with the full health plane live (windowed series, watchdog
   monitor, SLO evaluation) — and the section records the wall-clock
   overhead recording imposes.

   Gates (in-binary, HEALTH_PROFILE=1 bypasses; bench_compare re-checks
   the section):
   - decisions identical: enabling the health plane must not change a
     single admission outcome (admitted/rejected/epoch counts equal, and
     the modeled clock agrees bit for bit);
   - overhead_frac <= max_overhead (5%): best-of-[trials] wall time with
     the plane enabled vs disabled;
   - the standing SLOs over the recorded series do not page on the
     healthy workload. *)

module Churn = Workload.Churn
module Churn_pipeline = Experiments.Churn_pipeline
module Timeseries = Activermt_telemetry.Timeseries
module Telemetry = Activermt_telemetry.Telemetry
module Json = Activermt_telemetry.Json
module Slo = Activermt_health.Slo
module Monitor = Activermt_health.Monitor

let max_overhead = 0.05
let trials = 5

let zcfg ~quick =
  {
    Churn.default_zipf_config with
    Churn.clients = (if quick then 20_000 else 60_000);
    batch = 64;
    resident_target = 64;
  }

let params = Rmt.Params.default
let seed = 4242

(* The health plane a deployment would run over this workload: one
   (generous) watchdog plus an admission-ratio SLO.  The registry clock
   is rewired by the pipeline to its modeled epoch clock. *)
let make_plane () =
  let series = Timeseries.create ~bucket_s:1.0 ~capacity:256 () in
  let mon = Monitor.create ~series () in
  Monitor.add_watchdog mon
    {
      Monitor.wd_name = "churn.rejection_spike";
      wd_description = "rejections spiking inside 20 modeled buckets";
      wd_window = 20;
      wd_trigger = Monitor.Series_sum { series = "churn.rejected"; max = 1e9 };
      wd_severity = Slo.Warn;
    };
  (series, mon)

let slos =
  [
    Slo.ratio ~name:"churn.admission"
      ~description:"steady-state churn keeps admitting arrivals" ~window:64
      ~good:"churn.admitted" ~total:"churn.offered" ~target:0.01 ();
  ]

(* One timed run of the workload; [series] is noop for the disabled
   side.  Sys.time would under-count the sharded recording path, so the
   bench uses wall time like the fastpath records. *)
let timed ~series zcfg =
  let t0 = Unix.gettimeofday () in
  let r = Churn_pipeline.run ~params ~series ~seed zcfg in
  (Unix.gettimeofday () -. t0, r)

let merge_into_bench_json ~path section =
  let existing =
    if Sys.file_exists path then
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string text with Ok v -> Json.to_obj v | Error _ -> None
    else None
  in
  let fields =
    match existing with
    | Some fields -> List.remove_assoc "health" fields @ [ ("health", section) ]
    | None -> [ ("health", section) ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true (Json.Obj fields));
  output_char oc '\n';
  close_out oc

let run ~quick =
  let zcfg = zcfg ~quick in
  Printf.printf
    "== Health-plane overhead: mixed churn, recording on vs off (%d clients, best of %d) ==\n"
    zcfg.Churn.clients trials;
  (* One untimed warmup, then interleaved disabled/enabled pairs.  The
     naive all-disabled-then-all-enabled ordering measured a phantom
     ~6-12% "overhead" at full scale: the disabled trials all ran on a
     small young heap and the enabled trials inherited the major heap
     the earlier runs had grown, a systematic drift best-of-N cannot
     cancel.  Alternating sides puts both on the same heap trajectory.
     A fresh registry per enabled trial keeps each run recording the
     same series (no cross-trial accumulation); the fastest enabled
     trial's plane is the one the SLOs evaluate. *)
  ignore (timed ~series:Timeseries.noop zcfg);
  let off_trial () = timed ~series:Timeseries.noop zcfg in
  let on_trial () =
    let series, mon = make_plane () in
    let t, r = timed ~series zcfg in
    (t, r, series, mon)
  in
  let best_off = ref (off_trial ()) in
  let best_on = ref (on_trial ()) in
  for _ = 2 to trials do
    let off = off_trial () in
    if fst off < fst !best_off then best_off := off;
    let ((t, _, _, _) as on) = on_trial () in
    let bt, _, _, _ = !best_on in
    if t < bt then best_on := on
  done;
  let t_off, r_off = !best_off in
  let t_on, r_on, series, mon = !best_on in
  let evals = Monitor.evaluate mon slos in
  let pages = Monitor.page_count mon in
  let identical =
    r_off.Churn_pipeline.admitted = r_on.Churn_pipeline.admitted
    && r_off.Churn_pipeline.rejected = r_on.Churn_pipeline.rejected
    && r_off.Churn_pipeline.epochs = r_on.Churn_pipeline.epochs
    && r_off.Churn_pipeline.modeled_span_s = r_on.Churn_pipeline.modeled_span_s
  in
  let overhead = Float.max 0.0 ((t_on /. t_off) -. 1.0) in
  Printf.printf
    "disabled %.4f s  enabled %.4f s  overhead %+.2f%%  (%d admitted, %d \
     rejected, %d series, %d SLOs, %d pages)%s\n"
    t_off t_on (100.0 *. overhead) r_on.Churn_pipeline.admitted
    r_on.Churn_pipeline.rejected
    (List.length (Timeseries.names series))
    (List.length evals) pages
    (if identical then "" else "  DECISIONS DIVERGED");
  let tel = Telemetry.default in
  Telemetry.set_gauge tel "health.bench.overhead_frac" overhead;
  Telemetry.set_gauge tel "health.bench.pages" (float_of_int pages);
  let section =
    Json.Obj
      [
        ("max_overhead", Json.Num max_overhead);
        ("clients", Json.Num (float_of_int zcfg.Churn.clients));
        ("trials", Json.Num (float_of_int trials));
        ("disabled_wall_s", Json.Num (Float.round (1e6 *. t_off) /. 1e6));
        ("enabled_wall_s", Json.Num (Float.round (1e6 *. t_on) /. 1e6));
        ("overhead_frac", Json.Num (Float.round (1e4 *. overhead) /. 1e4));
        ("series_count", Json.Num (float_of_int (List.length (Timeseries.names series))));
        ("decisions_identical", Json.Num (if identical then 1.0 else 0.0));
        ("pages", Json.Num (float_of_int pages));
      ]
  in
  merge_into_bench_json ~path:"BENCH_alloc.json" section;
  print_endline "merged health section into BENCH_alloc.json";
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  if not identical then fail "admission decisions diverged with recording on";
  if overhead > max_overhead then
    fail "recording overhead %.2f%% above %.0f%%" (100.0 *. overhead)
      (100.0 *. max_overhead);
  if pages > 0 then fail "%d page(s) on the healthy workload" pages;
  match !failures with
  | [] -> ()
  | fs when Sys.getenv_opt "HEALTH_PROFILE" <> None ->
    List.iter (fun f -> Printf.printf "NOTE (gate bypassed): %s\n" f) fs
  | fs -> failwith ("health bench: " ^ String.concat "; " (List.rev fs))
