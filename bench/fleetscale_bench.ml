(* Planet-scale fleet benchmark (the BENCH_alloc.json "fleetscale"
   section): the Experiments.Fleet_scale scenario — a fat-tree fleet
   admitting a large concurrent service population through the batched
   epoch pipeline under hierarchical placement, a link-flap drill
   against the incremental router, and a rolling pod failure.

   Hard gates (in-binary, independent of any baseline):
   - zero FID loss and zero orphans through the rolling pod failure
   - every offered service admitted (full mode: >= 100k concurrent on
     1024 switches)
   - a single link flap touches < 5% of routed (src, dst) pairs *)

module Topology = Activermt_fleet.Topology
module Telemetry = Activermt_telemetry.Telemetry
module Json = Activermt_telemetry.Json
module Fleet_scale = Experiments.Fleet_scale
module Stats = Stdx.Stats

let max_flap_frac = 0.05

let merge_into_bench_json ~path section =
  let existing =
    if Sys.file_exists path then
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string text with Ok v -> Json.to_obj v | Error _ -> None
    else None
  in
  let fields =
    match existing with
    | Some fields ->
      List.remove_assoc "fleetscale" fields @ [ ("fleetscale", section) ]
    | None -> [ ("fleetscale", section) ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true (Json.Obj fields));
  output_char oc '\n';
  close_out oc

let run ~quick =
  let cfg =
    if quick then Fleet_scale.quick_config else Fleet_scale.default_config
  in
  Printf.printf
    "== Planet-scale fleet: k=%d fat-tree, %d services, rolling pod failure ==\n"
    cfg.Fleet_scale.k cfg.Fleet_scale.services;
  let t0 = Unix.gettimeofday () in
  let r = Fleet_scale.run_scenario ~log:print_endline cfg in
  let wall_s = Unix.gettimeofday () -. t0 in
  let p50 = Stats.percentile r.Fleet_scale.place_us 50.0 in
  let p99 = Stats.percentile r.Fleet_scale.place_us 99.0 in
  Printf.printf "placement cost: p50 %.1f us/service, p99 %.1f us/service\n" p50
    p99;
  Printf.printf "scenario wall time: %.1f s\n" wall_s;

  (* Hard gates. *)
  if r.Fleet_scale.lost > 0 then
    failwith "fleetscale bench: rolling pod failure lost FIDs";
  if r.Fleet_scale.orphans > 0 then
    failwith "fleetscale bench: residents left on down switches";
  if r.Fleet_scale.concurrent < r.Fleet_scale.offered then
    failwith
      (Printf.sprintf
         "fleetscale bench: only %d of %d services concurrently admitted"
         r.Fleet_scale.concurrent r.Fleet_scale.offered);
  if (not quick) && r.Fleet_scale.concurrent < 100_000 then
    failwith "fleetscale bench: headline run below 100k concurrent services";
  if r.Fleet_scale.flap_frac >= max_flap_frac then
    failwith
      (Printf.sprintf
         "fleetscale bench: link flap touched %.2f%% of routed pairs (gate %.0f%%)"
         (100.0 *. r.Fleet_scale.flap_frac)
         (100.0 *. max_flap_frac));
  let consistent =
    if r.Fleet_scale.lost = 0 && r.Fleet_scale.orphans = 0 then 1.0 else 0.0
  in

  (* Headline numbers ride the process registry for --metrics-out. *)
  let tel = Telemetry.default in
  Telemetry.set_gauge tel "fleetscale.switches"
    (float_of_int r.Fleet_scale.switches);
  Telemetry.set_gauge tel "fleetscale.concurrent"
    (float_of_int r.Fleet_scale.concurrent);
  Telemetry.set_gauge tel "fleetscale.occupancy" r.Fleet_scale.occupancy;
  Telemetry.set_gauge tel "fleetscale.place_p99_us" p99;
  Telemetry.set_gauge tel "fleetscale.flap_frac" r.Fleet_scale.flap_frac;
  Telemetry.set_gauge tel "fleetscale.relocated"
    (float_of_int r.Fleet_scale.relocated);
  Telemetry.set_gauge tel "fleetscale.lost" (float_of_int r.Fleet_scale.lost);

  let num n = Json.Num (float_of_int n) in
  let section =
    Json.Obj
      [
        ("k", num cfg.Fleet_scale.k);
        ("switches", num r.Fleet_scale.switches);
        ("links", num r.Fleet_scale.links);
        ("pods", num r.Fleet_scale.n_pods);
        ("offered", num r.Fleet_scale.offered);
        ("admitted", num r.Fleet_scale.admitted);
        ("concurrent", num r.Fleet_scale.concurrent);
        ("rejected", num r.Fleet_scale.rejected);
        ("spillover", num r.Fleet_scale.spillover);
        ("adm_epochs", num r.Fleet_scale.adm_epochs);
        ("occupancy", Json.Num r.Fleet_scale.occupancy);
        ("place_p50_us", Json.Num (Float.round (p50 *. 10.0) /. 10.0));
        ("place_p99_us", Json.Num (Float.round (p99 *. 10.0) /. 10.0));
        ("sssp_runs", num r.Fleet_scale.sssp_runs);
        ("routed_pairs", num r.Fleet_scale.routed_pairs);
        ( "flap_touched",
          num (max r.Fleet_scale.flap_down_touched r.Fleet_scale.flap_up_touched)
        );
        ("flap_frac", Json.Num r.Fleet_scale.flap_frac);
        ("max_flap_frac", Json.Num max_flap_frac);
        ("failed_switches", num r.Fleet_scale.failed_switches);
        ("relocated", num r.Fleet_scale.relocated);
        ("lost", num r.Fleet_scale.lost);
        ("consistent", Json.Num consistent);
      ]
  in
  merge_into_bench_json ~path:"BENCH_alloc.json" section;
  print_endline "merged fleetscale section into BENCH_alloc.json"
