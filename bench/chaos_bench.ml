(* Chaos benchmark (the BENCH_alloc.json "chaos" section): sweep packet
   loss x retry policy over the full negotiation + memsync stack
   (lib/exp/chaos.ml), plus one hostile profile combining corruption,
   duplication, link flaps and a degraded control plane.  The CI gate:
   with retries enabled, service completion at 1% loss must stay >= 95%;
   the fire-once baseline rows document why the recovery machinery
   exists.  Every run is seeded, so a failure reproduces exactly from
   the printed seed (see docs/FAULTS.md). *)

module Chaos = Experiments.Chaos
module Faults = Netsim.Faults
module Telemetry = Activermt_telemetry.Telemetry
module Json = Activermt_telemetry.Json

let seed = 0xC4A05

type row = { label : string; loss : float; retries : bool; r : Chaos.result }

let profile_for ~loss = Faults.lossy ~drop:loss ~jitter_s:1e-4 ()

let hostile =
  {
    Faults.drop = 0.02;
    duplicate = 0.05;
    corrupt = 0.02;
    jitter_s = 5e-4;
    flap_period_s = 10.0;
    flap_down_s = 0.5;
    table_update_slowdown = 20.0;
    table_update_fail = 0.2;
  }

let run_one ~label ~loss ~retries profile =
  let r = Chaos.run { Chaos.default_config with seed; retries; profile } in
  { label; loss; retries; r }

let print_row { label; loss; retries; r } =
  Printf.printf
    "%-10s loss %4.1f%%  retries %-3s  completion %5.1f%%  nego retries %3d  sync rtx %4d  fallback %3d  faults %4d\n"
    label (100.0 *. loss)
    (if retries then "on" else "off")
    (100.0 *. r.Chaos.completion)
    r.Chaos.negotiation_retries r.Chaos.sync_retransmits r.Chaos.fallback_words
    r.Chaos.fault_events

let json_of_row { label; loss; retries; r } =
  Json.Obj
    [
      ("label", Json.Str label);
      ("loss", Json.Num loss);
      ("retries", Json.Str (if retries then "on" else "off"));
      ("completion", Json.Num r.Chaos.completion);
      ("completed", Json.Num (float_of_int r.Chaos.completed));
      ("negotiation_retries", Json.Num (float_of_int r.Chaos.negotiation_retries));
      ("sync_retransmits", Json.Num (float_of_int r.Chaos.sync_retransmits));
      ("fallback_words", Json.Num (float_of_int r.Chaos.fallback_words));
      ("fault_events", Json.Num (float_of_int r.Chaos.fault_events));
      ("sim_time_s", Json.Num r.Chaos.sim_time_s);
    ]

(* Same pattern as the fleet bench: own only the "chaos" member of
   BENCH_alloc.json. *)
let merge_into_bench_json ~path section =
  let existing =
    if Sys.file_exists path then
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string text with Ok v -> Json.to_obj v | Error _ -> None
    else None
  in
  let fields =
    match existing with
    | Some fields -> List.remove_assoc "chaos" fields @ [ ("chaos", section) ]
    | None -> [ ("chaos", section) ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true (Json.Obj fields));
  output_char oc '\n';
  close_out oc

let write_trace ~path faults =
  let oc = open_out path in
  List.iter
    (fun e -> output_string oc (Format.asprintf "%a\n" Faults.pp_event e))
    (Faults.events faults);
  close_out oc

let run ~quick =
  let losses = if quick then [ 0.0; 0.01; 0.05; 0.2 ] else [ 0.0; 0.01; 0.05; 0.1; 0.2 ] in
  Printf.printf "== Chaos: protocol stack under seeded faults (seed %#x) ==\n" seed;
  let rows =
    List.concat_map
      (fun loss ->
        let label = Printf.sprintf "loss" in
        [
          run_one ~label ~loss ~retries:true (profile_for ~loss);
          run_one ~label ~loss ~retries:false (profile_for ~loss);
        ])
      losses
    @ [ run_one ~label:"hostile" ~loss:hostile.Faults.drop ~retries:true hostile ]
  in
  List.iter print_row rows;

  let completion_at ~loss ~retries =
    List.find_map
      (fun row ->
        if row.label = "loss" && row.loss = loss && row.retries = retries then
          Some row.r.Chaos.completion
        else None)
      rows
    |> Option.get
  in
  (* Sanity anchors for the sweep itself. *)
  let clean = completion_at ~loss:0.0 ~retries:true in
  if clean < 1.0 then failwith "chaos bench: fault-free run did not complete";
  let gated = completion_at ~loss:0.01 ~retries:true in
  let baseline = completion_at ~loss:0.01 ~retries:false in
  Printf.printf
    "1%% loss: completion %.1f%% with retries vs %.1f%% fire-once baseline\n"
    (100.0 *. gated) (100.0 *. baseline);
  if gated < 0.95 then
    failwith
      (Printf.sprintf
         "chaos bench: completion %.3f at 1%% loss with retries is below the 0.95 gate"
         gated);

  let hostile_row = List.nth rows (List.length rows - 1) in
  write_trace ~path:"chaos_trace.txt" hostile_row.r.Chaos.faults;
  Printf.printf "wrote %d fault events to chaos_trace.txt\n"
    (List.length (Faults.events hostile_row.r.Chaos.faults));

  (* Headline numbers ride the process registry for --metrics-out. *)
  let tel = Telemetry.default in
  Telemetry.set_gauge tel "chaos.bench.completion_1pct_retries" gated;
  Telemetry.set_gauge tel "chaos.bench.completion_1pct_baseline" baseline;
  Telemetry.set_gauge tel "chaos.bench.completion_hostile"
    hostile_row.r.Chaos.completion;
  Telemetry.set_gauge tel "chaos.bench.seed" (float_of_int seed);

  let section =
    Json.Obj
      [
        ("seed", Json.Num (float_of_int seed));
        ("services", Json.Num (float_of_int Chaos.default_config.Chaos.services));
        ("words", Json.Num (float_of_int Chaos.default_config.Chaos.words));
        ("gate_completion_1pct", Json.Num 0.95);
        ("sweep", Json.Arr (List.map json_of_row rows));
      ]
  in
  merge_into_bench_json ~path:"BENCH_alloc.json" section;
  print_endline "merged chaos section into BENCH_alloc.json"
