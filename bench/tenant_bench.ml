(* Multi-tenant fairness benchmark (the BENCH_alloc.json "tenants"
   section): the noisy-neighbor scenario of Experiments.Tenants at
   several tenant counts.

     quick  8 and 64 tenants (the CI smoke scale)
     full   8, 64 and 512 tenants

   Per size the gates are absolute, not baseline-relative, because the
   quantities are deterministic (modeled clock, seeded shuffle):
   - Jain's fairness index over well-behaved tenants >= [min_jain];
   - every well-behaved tenant retains >= [min_retained] of its weighted
     fair share despite the hostile tenant's 10x flood;
   - the zero-FID-loss audit holds (residents, decisions and parked
     state tile the submitted FIDs).
   bench_compare additionally fails if the modeled p99 admission latency
   more than doubles against the committed baseline. *)

module Tenants = Experiments.Tenants
module Telemetry = Activermt_telemetry.Telemetry
module Json = Activermt_telemetry.Json

let min_jain = 0.9
let min_retained = 0.9

let json_row ~tenants (r : Tenants.result) =
  let ms v = Json.Num (Float.round (10_000.0 *. 1000.0 *. v) /. 10_000.0) in
  Json.Obj
    [
      ("tenants", Json.Num (float_of_int tenants));
      ("demand_blocks", Json.Num (float_of_int r.Tenants.config.Tenants.demand_blocks));
      ("jain_wb", Json.Num (Float.round (10_000.0 *. r.Tenants.jain_wb) /. 10_000.0));
      ( "min_retained_wb",
        Json.Num (Float.round (10_000.0 *. r.Tenants.min_retained_wb) /. 10_000.0) );
      ("p50_admit_ms", ms r.Tenants.p50_admit_s);
      ("p99_admit_ms", ms r.Tenants.p99_admit_s);
      ("granted", Json.Num (float_of_int r.Tenants.granted));
      ("denied_capacity", Json.Num (float_of_int r.Tenants.denied_capacity));
      ("evictions", Json.Num (float_of_int r.Tenants.evictions));
      ("relocations", Json.Num (float_of_int r.Tenants.relocations));
      ("epochs", Json.Num (float_of_int r.Tenants.epochs));
      ("consistent", Json.Num (if r.Tenants.consistent then 1.0 else 0.0));
    ]

let merge_into_bench_json ~path section =
  let existing =
    if Sys.file_exists path then
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string text with Ok v -> Json.to_obj v | Error _ -> None
    else None
  in
  let fields =
    match existing with
    | Some fields -> List.remove_assoc "tenants" fields @ [ ("tenants", section) ]
    | None -> [ ("tenants", section) ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true (Json.Obj fields));
  output_char oc '\n';
  close_out oc

let run ~quick =
  let sizes = if quick then [ 8; 64 ] else [ 8; 64; 512 ] in
  Printf.printf
    "== Multi-tenant fairness: noisy neighbor at 10x offered load ==\n";
  let gate_failures = ref [] in
  let rows =
    List.map
      (fun tenants ->
        let cfg = Tenants.preset ~tenants () in
        let r = Tenants.run ~clock:Unix.gettimeofday cfg in
        Printf.printf
          "%4d tenants  jain %.4f  min-retained %.4f  p99 admit %.3f ms  \
           (%d granted, %d evictions, %d relocations, %d epochs)%s\n"
          tenants r.Tenants.jain_wb r.Tenants.min_retained_wb
          (1000.0 *. r.Tenants.p99_admit_s)
          r.Tenants.granted r.Tenants.evictions r.Tenants.relocations
          r.Tenants.epochs
          (if r.Tenants.consistent then "" else "  FID AUDIT FAILED");
        let fail fmt = Printf.ksprintf (fun s -> gate_failures := s :: !gate_failures) fmt in
        if r.Tenants.jain_wb < min_jain then
          fail "%d tenants: jain %.4f below %.2f" tenants r.Tenants.jain_wb min_jain;
        if r.Tenants.min_retained_wb < min_retained then
          fail "%d tenants: min retained share %.4f below %.2f" tenants
            r.Tenants.min_retained_wb min_retained;
        if not r.Tenants.consistent then
          fail "%d tenants: FID residency audit failed" tenants;
        let tel = Telemetry.default in
        let g name v = Telemetry.set_gauge tel (Printf.sprintf "tenant.bench.t%d.%s" tenants name) v in
        g "jain_wb" r.Tenants.jain_wb;
        g "min_retained_wb" r.Tenants.min_retained_wb;
        g "p99_admit_ms" (1000.0 *. r.Tenants.p99_admit_s);
        json_row ~tenants r)
      sizes
  in
  let section =
    Json.Obj
      [
        ("min_jain", Json.Num min_jain);
        ("min_retained", Json.Num min_retained);
        ("sweep", Json.Arr rows);
      ]
  in
  merge_into_bench_json ~path:"BENCH_alloc.json" section;
  print_endline "merged tenants section into BENCH_alloc.json";
  match !gate_failures with
  | [] -> ()
  | fs when Sys.getenv_opt "TENANT_PROFILE" <> None ->
    List.iter (fun f -> Printf.printf "NOTE (gate bypassed): %s\n" f) fs
  | fs -> failwith ("tenant bench: " ^ String.concat "; " (List.rev fs))
