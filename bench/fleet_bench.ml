(* Fleet capacity benchmark (the BENCH_alloc.json "fleet" section): the
   same seeded mixed workload is offered to a single switch and to a
   4-switch full mesh under least-loaded placement — the fleet must
   admit strictly more concurrent services — followed by a failure
   drill: a loaded switch is forcibly failed and every resident service
   must be re-placed on the survivors with zero lost FIDs.

   Runs on small 32-block stages so both fleets saturate quickly; the
   numbers measure placement behaviour, not raw switch capacity. *)

module Topology = Activermt_fleet.Topology
module Placement = Activermt_fleet.Placement
module Fleet = Activermt_fleet.Fleet
module Telemetry = Activermt_telemetry.Telemetry
module Json = Activermt_telemetry.Json
module Churn = Workload.Churn

let params = Rmt.Params.with_blocks_per_stage Rmt.Params.default 32

let arrivals ~n ~seed =
  List.concat_map
    (fun (e : Churn.epoch) ->
      List.filter_map
        (function
          | Churn.Arrive { fid; kind; _ } -> Some (fid, kind)
          | Churn.Depart _ -> None)
        e.Churn.events)
    (Churn.mixed_arrivals ~n (Stdx.Prng.create ~seed))

type capacity = {
  switches : int;
  offered : int;
  admitted : int;
  concurrent : int;
  spillover : int;
  occupancy : float;
}

let offer ~switches ~n ~seed =
  let tel = Telemetry.create () in
  let topo = Topology.full_mesh ~switches ~latency_s:1e-5 in
  let fleet =
    Fleet.create ~policy:Placement.Least_loaded ~params ~telemetry:tel topo
  in
  List.iter
    (fun (fid, kind) ->
      ignore (Fleet.admit fleet ~fid (Experiments.Harness.app_of_kind kind)))
    (arrivals ~n ~seed);
  ( fleet,
    {
      switches;
      offered = n;
      admitted = Telemetry.counter_value tel "fleet.admitted";
      concurrent = List.length (Fleet.residents fleet);
      spillover = Telemetry.counter_value tel "fleet.spillover";
      occupancy =
        Option.value ~default:0.0 (Telemetry.gauge_value tel "fleet.occupancy");
    } )

let json_of_capacity c =
  Json.Obj
    [
      ("switches", Json.Num (float_of_int c.switches));
      ("offered", Json.Num (float_of_int c.offered));
      ("admitted", Json.Num (float_of_int c.admitted));
      ("concurrent", Json.Num (float_of_int c.concurrent));
      ("spillover", Json.Num (float_of_int c.spillover));
      ("occupancy", Json.Num c.occupancy);
    ]

let print_capacity c =
  Printf.printf
    "%d switch%s  %4d offered  %4d admitted  %4d concurrent  %4d spilled  occupancy %.3f\n"
    c.switches
    (if c.switches = 1 then " " else "es")
    c.offered c.admitted c.concurrent c.spillover c.occupancy

(* Merge the fleet section into BENCH_alloc.json without disturbing the
   sections other bench entries own (and vice versa). *)
let merge_into_bench_json ~path section =
  let existing =
    if Sys.file_exists path then
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string text with Ok v -> Json.to_obj v | Error _ -> None
    else None
  in
  let fields =
    match existing with
    | Some fields -> List.remove_assoc "fleet" fields @ [ ("fleet", section) ]
    | None -> [ ("fleet", section) ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true (Json.Obj fields));
  output_char oc '\n';
  close_out oc

let run ~quick =
  let n = if quick then 100 else 300 in
  let seed = 7001 in
  Printf.printf "== Fleet placement: capacity and failover (n=%d arrivals) ==\n" n;
  let _fleet1, one = offer ~switches:1 ~n ~seed in
  let _fleet4, four = offer ~switches:4 ~n ~seed in
  print_capacity one;
  print_capacity four;
  let scaling =
    if one.concurrent > 0 then
      float_of_int four.concurrent /. float_of_int one.concurrent
    else 0.0
  in
  Printf.printf "concurrency scaling 4sw/1sw: %.2fx\n" scaling;
  if four.concurrent <= one.concurrent then
    failwith "fleet bench: 4 switches did not admit more than 1";

  (* Failure drill: a fresh 4-switch fleet at full stage capacity, loaded
     below saturation so the drill measures re-placement (and its state
     recovery), not whether the survivors happen to have room. *)
  let drill_tel = Telemetry.create () in
  let drill =
    Fleet.create ~policy:Placement.Least_loaded ~params:Rmt.Params.default
      ~telemetry:drill_tel
      (Topology.full_mesh ~switches:4 ~latency_s:1e-5)
  in
  List.iter
    (fun (fid, kind) ->
      ignore (Fleet.admit drill ~fid (Experiments.Harness.app_of_kind kind)))
    (arrivals ~n:(n / 3) ~seed:(seed + 1));
  let victim, victim_residents =
    List.fold_left
      (fun ((_, best) as acc) sw ->
        let r = List.length (Fleet.residents_of drill ~sw) in
        if r > best then (sw, r) else acc)
      (0, -1)
      [ 0; 1; 2; 3 ]
  in
  let { Fleet.relocated; lost } = Fleet.fail_switch drill ~sw:victim in
  Printf.printf
    "failure drill: failed switch %d (%d residents) -> %d relocated, %d lost\n"
    victim victim_residents (List.length relocated) (List.length lost);
  if lost <> [] then failwith "fleet bench: switch failure lost FIDs";

  (* Headline numbers ride the process registry for --metrics-out. *)
  let tel = Telemetry.default in
  Telemetry.set_gauge tel "fleet.bench.concurrent_1sw" (float_of_int one.concurrent);
  Telemetry.set_gauge tel "fleet.bench.concurrent_4sw" (float_of_int four.concurrent);
  Telemetry.set_gauge tel "fleet.bench.scaling" scaling;
  Telemetry.set_gauge tel "fleet.bench.failover_relocated"
    (float_of_int (List.length relocated));
  Telemetry.set_gauge tel "fleet.bench.failover_lost"
    (float_of_int (List.length lost));

  let section =
    Json.Obj
      [
        ("policy", Json.Str (Placement.policy_to_string Placement.Least_loaded));
        ("arrivals", Json.Num (float_of_int n));
        ("blocks_per_stage", Json.Num (float_of_int params.Rmt.Params.blocks_per_stage));
        ("capacity", Json.Arr [ json_of_capacity one; json_of_capacity four ]);
        ("concurrency_scaling", Json.Num (Float.round (100.0 *. scaling) /. 100.0));
        ( "failover",
          Json.Obj
            [
              ("failed_switch", Json.Num (float_of_int victim));
              ("residents", Json.Num (float_of_int victim_residents));
              ("relocated", Json.Num (float_of_int (List.length relocated)));
              ("lost", Json.Num (float_of_int (List.length lost)));
            ] );
      ]
  in
  merge_into_bench_json ~path:"BENCH_alloc.json" section;
  print_endline "merged fleet section into BENCH_alloc.json"
