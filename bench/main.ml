(* Regenerate every figure of the paper's evaluation (Section 6) plus the
   Section 5 resource comparison, and run the Bechamel micro-benchmarks.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig5a fig9b  # a subset
     dune exec bench/main.exe -- --quick      # reduced trials/epochs
     dune exec bench/main.exe -- --quick alloc --metrics-out m.json

   --metrics-out FILE dumps the process-wide telemetry registry
   (counters, gauges, span histograms — see docs/TELEMETRY.md) as JSON
   after the selected experiments finish.

   Output is plain text series (see lib/exp/report.ml); EXPERIMENTS.md
   records the headline numbers against the paper's. *)

module E = Experiments

type experiment = { name : string; info : string; run : quick:bool -> unit }

let params = Rmt.Params.default

let experiments =
  [
    {
      name = "fig5a";
      info = "allocation time, pure workloads, mc vs lc";
      run =
        (fun ~quick ->
          let n = if quick then 100 else 500 in
          E.Fig5.run_5a ~n ~every:(n / 25) params);
    };
    {
      name = "fig5b";
      info = "allocation time, mixed workload, 10 trials, EWMA";
      run =
        (fun ~quick ->
          let n = if quick then 100 else 500 in
          let trials = if quick then 3 else 10 in
          E.Fig5.run_5b ~n ~trials ~every:(n / 25) params);
    };
    {
      name = "fig6";
      info = "memory utilization vs. arrivals, pure workloads";
      run =
        (fun ~quick ->
          let n = if quick then 100 else 500 in
          E.Fig6.run ~n ~every:(n / 25) params);
    };
    {
      name = "fig7";
      info = "online churn: utilization/concurrency/reallocation/fairness";
      run =
        (fun ~quick ->
          let epochs = if quick then 200 else 1000 in
          let trials = if quick then 3 else 10 in
          E.Fig7.run ~epochs ~trials ~every:(epochs / 20) E.Fig7.all params);
    };
    {
      name = "fig8a";
      info = "provisioning time breakdown per arrival";
      run =
        (fun ~quick ->
          let epochs = if quick then 100 else 300 in
          E.Fig8.run_8a ~epochs ~every:10 params);
    };
    {
      name = "fig8b";
      info = "processing latency vs. program length";
      run = (fun ~quick -> E.Fig8.run_8b ~packets:(if quick then 200 else 1000) params);
    };
    {
      name = "fig9a";
      info = "case study: monitor -> context switch -> cache";
      run = (fun ~quick:_ -> E.Case_study.print_9a params);
    };
    {
      name = "fig9b";
      info = "case study: four staggered cache tenants";
      run = (fun ~quick:_ -> E.Case_study.print_9b params);
    };
    {
      name = "fig10";
      info = "per-arrival zoom: provisioning gaps and disruption";
      run = (fun ~quick:_ -> E.Case_study.print_10 params);
    };
    {
      name = "fig11";
      info = "allocation schemes wf/ff/bf/realloc (boxplots)";
      run =
        (fun ~quick ->
          let trials = if quick then 3 else 10 in
          E.Fig11.run ~epochs:100 ~trials params);
    };
    {
      name = "fig12";
      info = "allocation time vs. block granularity";
      run = (fun ~quick -> E.Fig12.run ~n:(if quick then 50 else 100) params);
    };
    {
      name = "capacity";
      info = "Section 5 resource overheads and concurrency";
      run = (fun ~quick:_ -> E.Capacity.run params);
    };
    {
      name = "baseline";
      info = "comparisons: NetVRM-style allocator; monolithic-P4 deployment";
      run =
        (fun ~quick ->
          E.Baseline.run_netvrm ~n:(if quick then 100 else 400) params;
          E.Baseline.run_deployment ~changes:(if quick then 20 else 50) params);
    };
    {
      name = "ablation";
      info = "design-knob ablations: mutant budget, TCAM capacity";
      run =
        (fun ~quick ->
          let n = if quick then 50 else 150 in
          E.Ablation.run_mutant_limit ~n params;
          E.Ablation.run_tcam ~n:(if quick then 150 else 600) params;
          E.Ablation.run_bandwidth ~n:(if quick then 80 else 150) params);
    };
    {
      name = "extended";
      info = "beyond-paper: five-service churn workload";
      run =
        (fun ~quick ->
          E.Extended.run
            ~epochs:(if quick then 100 else 300)
            ~trials:(if quick then 2 else 5)
            params);
    };
    {
      name = "alloc";
      info = "admit throughput for the allocation fast path (BENCH_alloc.json)";
      run = (fun ~quick -> Alloc_bench.run ~quick);
    };
    {
      name = "fleet";
      info = "multi-switch placement capacity and failover (BENCH_alloc.json)";
      run = (fun ~quick -> Fleet_bench.run ~quick);
    };
    {
      name = "chaos";
      info = "fault injection: loss x retry-policy sweep (BENCH_alloc.json)";
      run = (fun ~quick -> Chaos_bench.run ~quick);
    };
    {
      name = "churn";
      info = "Zipf churn at scale: batched epoch admission (BENCH_alloc.json)";
      run = (fun ~quick -> Churn_bench.run ~quick);
    };
    {
      name = "tenants";
      info = "multi-tenant fairness: noisy-neighbor quotas/WRR/preemption (BENCH_alloc.json)";
      run = (fun ~quick -> Tenant_bench.run ~quick);
    };
    {
      name = "device";
      info = "exec throughput: interpreter vs JIT closures (BENCH_alloc.json)";
      run = (fun ~quick -> Device_bench.run ~quick);
    };
    {
      name = "fleetscale";
      info =
        "planet-scale fleet: fat-tree admission, link-flap repair, pod failure (BENCH_alloc.json)";
      run = (fun ~quick -> Fleetscale_bench.run ~quick);
    };
    {
      name = "health";
      info = "health-plane overhead: series recording on vs off (BENCH_alloc.json)";
      run = (fun ~quick -> Health_bench.run ~quick);
    };
    { name = "micro"; info = "Bechamel microbenchmarks"; run = (fun ~quick:_ -> Micro.run ()) };
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let metrics_out = ref None in
  let rec strip_metrics = function
    | [] -> []
    | "--metrics-out" :: path :: rest ->
      metrics_out := Some path;
      strip_metrics rest
    | "--metrics-out" :: [] ->
      prerr_endline "--metrics-out requires a FILE argument";
      exit 2
    | a :: rest when String.length a > 14 && String.sub a 0 14 = "--metrics-out=" ->
      metrics_out := Some (String.sub a 14 (String.length a - 14));
      strip_metrics rest
    | a :: rest -> a :: strip_metrics rest
  in
  let args = strip_metrics args in
  let wanted = List.filter (fun a -> a <> "--quick") args in
  let selected =
    if wanted = [] then experiments
    else begin
      List.iter
        (fun w ->
          if not (List.exists (fun e -> e.name = w) experiments) then begin
            Printf.eprintf "unknown experiment %S; available:\n" w;
            List.iter (fun e -> Printf.eprintf "  %-10s %s\n" e.name e.info) experiments;
            exit 2
          end)
        wanted;
      List.filter (fun e -> List.mem e.name wanted) experiments
    end
  in
  Printf.printf "ActiveRMT evaluation harness (%s mode, %d experiments)\n"
    (if quick then "quick" else "full")
    (List.length selected);
  List.iter
    (fun e ->
      let t0 = Sys.time () in
      e.run ~quick;
      Printf.printf "\n[%s done in %.1fs cpu]\n" e.name (Sys.time () -. t0))
    selected;
  match !metrics_out with
  | None -> ()
  | Some path ->
    let module Telemetry = Activermt_telemetry.Telemetry in
    Telemetry.write_json Telemetry.default ~path;
    Printf.printf "wrote telemetry to %s\n" path
