(* Data-plane execution benchmark (the BENCH_alloc.json "device"
   section): interpreter vs the JIT specialization tier on the programs
   real tenants run.

   Three services are admitted through the controller exactly as a
   client would (negotiate, synthesize against the granted mutant), then
   the same pre-built packet pools are executed by [Runtime.run] and by
   [Jit.run] and the packets/sec compared.

     pure   cache-only traffic (query-heavy with some populates)
     mixed  cache + heavy-hitter monitor + Cheetah LB SYNs

   The mixed speedup is the gate: the PR's acceptance criterion is >= 5x,
   enforced here and against the committed baseline by bench_compare. *)

module Controller = Activermt_control.Controller
module Negotiate = Activermt_client.Negotiate
module Cache_client = Activermt_client.Cache_client
module Hh_client = Activermt_client.Hh_client
module Lb_client = Activermt_client.Lb_client
module Mutant = Activermt_compiler.Mutant
module Telemetry = Activermt_telemetry.Telemetry
module Json = Activermt_telemetry.Json
module Kv = Workload.Kv

let params = Rmt.Params.default
let min_speedup = 5.0

let admit controller ~fid service =
  let request = Negotiate.request_packet ~fid ~seq:0 service in
  match Controller.handle_request controller request with
  | Ok provision ->
    Option.get (Negotiate.granted_regions provision.Controller.response)
  | Error _ -> failwith "device bench: admission failed on an empty switch"

let client_exn = function Ok c -> c | Error e -> failwith ("device bench: " ^ e)

(* One tenant of each service, admitted through the normal control path so
   the JIT specializes against a real granted allocation. *)
type tenants = {
  tables : Activermt.Table.t;
  cache : Cache_client.t;
  hh : Hh_client.t;
  lb : Lb_client.t;
}

let setup () =
  let device = Rmt.Device.create params in
  let controller = Controller.create device in
  let policy = Mutant.Most_constrained in
  let cache_regions = admit controller ~fid:1 Activermt_apps.Cache.service in
  let hh_regions = admit controller ~fid:2 Activermt_apps.Heavy_hitter.service in
  let lb_regions = admit controller ~fid:3 Activermt_apps.Cheetah_lb.service in
  {
    tables = Controller.tables controller;
    cache = client_exn (Cache_client.create params ~policy ~fid:1 ~regions:cache_regions);
    hh = client_exn (Hh_client.create params ~policy ~fid:2 ~regions:hh_regions);
    lb = client_exn (Lb_client.create params ~policy ~fid:3 ~regions:lb_regions);
  }

(* 64 packets ≈ the device's hot working set: big enough to exercise
   all keys and both cache paths, small enough that the benchmark
   measures execution rather than DRAM stalls on packet objects. *)
let pool_size = 64

(* Cache traffic is zipf-skewed by construction — the whole point of an
   in-switch cache is that a handful of hot items absorbs most queries —
   so the pool queries a small hot key set that the (rare) populates
   cover.  Register state persists across bench rounds, so after the
   first round the hot set is resident and queries hit. *)
let pool_pure t =
  Array.init pool_size (fun i ->
      let key = Kv.key_of_rank (16 * (i mod 4)) in
      if i mod 10 = 0 then Cache_client.populate_packet t.cache ~seq:i key ~value:(i * 7)
      else Cache_client.query_packet t.cache ~seq:i key)

(* Monitoring and load balancing run on every packet of the traffic they
   observe, while cache operations are request-driven, so a realistic
   device-level mix is dominated by the per-packet programs: half
   heavy-hitter sketching, a quarter LB SYNs, a quarter cache traffic
   (9:1 query:populate). *)
let pool_mixed t =
  Array.init pool_size (fun i ->
      match i mod 4 with
      | 0 ->
        let key = Kv.key_of_rank (32 * ((i lsr 3) land 1)) in
        if i mod 40 = 0 then
          Cache_client.populate_packet t.cache ~seq:i key ~value:(i * 7)
        else Cache_client.query_packet t.cache ~seq:i key
      | 1 | 2 -> Hh_client.monitor_packet t.hh ~seq:i (Kv.key_of_rank (i mod 64))
      | _ -> Lb_client.syn_packet t.lb ~seq:i ~salt:i)

let meta = Activermt.Runtime.meta ~flow_key:[| 0xBEEF; 0xCAFE |] ~src:100 ~dst:200 ()

(* One timed window: packets/sec for [exec] over the pool. *)
let run_window ~rounds exec pool =
  let n = Array.length pool in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to rounds do
    for i = 0 to n - 1 do
      ignore (exec pool.(i))
    done
  done;
  float_of_int (rounds * n) /. (Unix.gettimeofday () -. t0)

type row = { workload : string; packets : int; interp_pps : float; jit_pps : float }

let speedup r = if r.interp_pps > 0.0 then r.jit_pps /. r.interp_pps else 0.0

let measure ~quick name pool =
  (* Fresh state per engine so register contents don't favour either;
     rep windows alternate between the engines so ambient load on the
     machine hits both sides of the ratio equally. *)
  let rounds = if quick then 40 else 100 in
  let reps = if quick then 8 else 10 in
  let ti = setup () in
  let ipool = pool ti in
  let interp_exec pkt = Activermt.Runtime.run ti.tables ~meta pkt in
  let tj = setup () in
  let jpool = pool tj in
  let jit = Activermt.Jit.create tj.tables in
  let jit_exec pkt = Activermt.Jit.run jit ~meta pkt in
  (* Warm up both (the JIT compiles, sketches reach steady state). *)
  ignore (run_window ~rounds interp_exec ipool);
  ignore (run_window ~rounds jit_exec jpool);
  let interp_pps = ref 0.0 and jit_pps = ref 0.0 in
  for _ = 1 to reps do
    let i = run_window ~rounds interp_exec ipool in
    let j = run_window ~rounds jit_exec jpool in
    if i > !interp_pps then interp_pps := i;
    if j > !jit_pps then jit_pps := j
  done;
  {
    workload = name;
    packets = pool_size * rounds;
    interp_pps = !interp_pps;
    jit_pps = !jit_pps;
  }

let json_of_row r =
  Json.Obj
    [
      ("workload", Json.Str r.workload);
      ("packets_per_round", Json.Num (float_of_int r.packets));
      ("interp_pps", Json.Num (Float.round r.interp_pps));
      ("jit_pps", Json.Num (Float.round r.jit_pps));
      ("speedup", Json.Num (Float.round (100.0 *. speedup r) /. 100.0));
    ]

let print_row r =
  Printf.printf "%-6s  interp %10.0f pkt/s   jit %10.0f pkt/s   speedup %5.2fx\n"
    r.workload r.interp_pps r.jit_pps (speedup r)

(* Merge the device section into BENCH_alloc.json without disturbing the
   sections other bench entries own. *)
let merge_into_bench_json ~path section =
  let existing =
    if Sys.file_exists path then
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string text with Ok v -> Json.to_obj v | Error _ -> None
    else None
  in
  let fields =
    match existing with
    | Some fields -> List.remove_assoc "device" fields @ [ ("device", section) ]
    | None -> [ ("device", section) ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true (Json.Obj fields));
  output_char oc '\n';
  close_out oc

let run ~quick =
  Printf.printf "== Device execution: interpreter vs JIT specialization ==\n";
  let pure = measure ~quick "pure" pool_pure in
  let mixed = measure ~quick "mixed" pool_mixed in
  print_row pure;
  print_row mixed;

  let tel = Telemetry.default in
  Telemetry.set_gauge tel "device.bench.interp_pps_mixed" mixed.interp_pps;
  Telemetry.set_gauge tel "device.bench.jit_pps_mixed" mixed.jit_pps;
  Telemetry.set_gauge tel "device.bench.speedup_pure" (speedup pure);
  Telemetry.set_gauge tel "device.bench.speedup_mixed" (speedup mixed);

  let section =
    Json.Obj
      [
        ("min_speedup", Json.Num min_speedup);
        ("workloads", Json.Arr [ json_of_row pure; json_of_row mixed ]);
      ]
  in
  merge_into_bench_json ~path:"BENCH_alloc.json" section;
  print_endline "merged device section into BENCH_alloc.json";
  if speedup mixed < min_speedup then
    failwith
      (Printf.sprintf "device bench: JIT speedup %.2fx on mixed workload below %.1fx gate"
         (speedup mixed) min_speedup)
