(* Admit-throughput benchmark behind the allocation fast path
   (BENCH_alloc.json): replay pure and mixed arrival workloads against a
   fresh allocator at 1 and N scoring domains and report arrivals/sec plus
   p50/p99 per-admit compute time.  The [baseline] block holds the numbers
   measured on the pre-fast-path sequential implementation (same machine,
   same seeded workloads, commit 2da735c) so the JSON always carries the
   before/after comparison the trajectory is judged on.

   Each configuration runs against its own telemetry registry, so the
   JSON also carries the per-phase span breakdown (alloc.snapshot /
   alloc.enumerate / alloc.score / alloc.fill) that attributes where the
   admit time goes — in particular why multi-domain fan-out *hurts* the
   mixed workload (Domain.spawn overhead on chunks too small to amortize
   it; see docs/TELEMETRY.md).  CI diffs these records against
   bench/baseline_alloc.json via bench_compare.exe. *)

module Allocator = Activermt_alloc.Allocator
module App = Activermt_apps.App
module Stats = Stdx.Stats
module Telemetry = Activermt_telemetry.Telemetry
module Trace = Activermt_telemetry.Trace
module Json = Activermt_telemetry.Json

let params = Rmt.Params.default

let arrival_of ~fid kind =
  let app = Experiments.Harness.app_of_kind kind in
  {
    Allocator.fid;
    spec = App.spec app;
    elastic = app.App.elastic;
    demand_blocks = Array.copy app.App.demand_blocks;
  }

let arrivals_of_trace trace =
  List.concat_map
    (fun (e : Workload.Churn.epoch) ->
      List.filter_map
        (function
          | Workload.Churn.Arrive { fid; kind; _ } -> Some (arrival_of ~fid kind)
          | Workload.Churn.Depart _ -> None)
        e.Workload.Churn.events)
    trace

type run_stats = {
  label : string;
  workload : string;
  domains : int;
  arrivals : int;
  admitted : int;
  wall_s : float;
  p50_ms : float;
  p99_ms : float;
  tel : Telemetry.t;  (* this configuration's registry: spans + counters *)
}

let throughput s = float_of_int s.arrivals /. s.wall_s

let measure ~label ~workload ~domains arrivals =
  let tel = Telemetry.create () in
  let alloc = Allocator.create ~domains ~telemetry:tel params in
  let times = ref [] in
  let admitted = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun a ->
      match Allocator.admit alloc a with
      | Allocator.Admitted adm ->
        incr admitted;
        times := adm.Allocator.compute_time_s :: !times
      | Allocator.Rejected r -> times := r.Allocator.compute_time_s :: !times)
    arrivals;
  let wall_s = Unix.gettimeofday () -. t0 in
  Allocator.shutdown alloc;
  let ms p = 1000.0 *. Stats.percentile !times p in
  {
    label;
    workload;
    domains;
    arrivals = List.length arrivals;
    admitted = !admitted;
    wall_s;
    p50_ms = ms 50.0;
    p99_ms = ms 99.0;
    tel;
  }

let pure_trace ~n = Workload.Churn.arrivals_sequence Workload.Churn.Cache ~n

let mixed_trace ~n =
  Workload.Churn.mixed_arrivals ~n (Stdx.Prng.create ~seed:3001)

(* Measured on the seed implementation (two-pass enumeration, per-mutant
   Pool.slots/hashtable scoring, single core) with this same benchmark at
   n = 500 before the fast path landed. *)
let baseline =
  [
    ("pure", 7383.1, 0.104, 0.366);
    ("mixed", 414.0, 0.068, 12.299);
  ]

(* The per-admit phase spans recorded by the allocator, in hot-path
   order.  alloc.enumerate only fires on mutant-cache misses. *)
let phase_names =
  [ "alloc.admit"; "alloc.enumerate"; "alloc.snapshot"; "alloc.score"; "alloc.fill" ]

let json_of_phase (s : Telemetry.hist_summary) =
  Json.Obj
    [
      ("count", Json.Num (float_of_int s.Telemetry.count));
      ("total_ms", Json.Num (1000.0 *. s.Telemetry.sum));
      ("p50_ms", Json.Num (1000.0 *. s.Telemetry.p50));
      ("p99_ms", Json.Num (1000.0 *. s.Telemetry.p99));
      ("max_ms", Json.Num (1000.0 *. s.Telemetry.max));
    ]

let json_of_stats s =
  let phases =
    List.filter_map
      (fun name ->
        Option.map
          (fun sum -> (name, json_of_phase sum))
          (Telemetry.hist_summary s.tel name))
      phase_names
  in
  let counters =
    List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) (Telemetry.counters s.tel)
  in
  Json.Obj
    [
      ("workload", Json.Str s.workload);
      ("domains", Json.Num (float_of_int s.domains));
      ("arrivals", Json.Num (float_of_int s.arrivals));
      ("admitted", Json.Num (float_of_int s.admitted));
      ("arrivals_per_sec", Json.Num (Float.round (10.0 *. throughput s) /. 10.0));
      ("p50_ms", Json.Num s.p50_ms);
      ("p99_ms", Json.Num s.p99_ms);
      ("phases", Json.Obj phases);
      ("counters", Json.Obj counters);
    ]

(* Flight-recorder overhead on the admit path: the same mixed workload
   with tracing off (a [Trace.noop] tracer — the default every component
   ships with), head-sampled at 1%, and fully sampled.  The "off" figure
   must stay within noise of the untraced runs above; the sampled figures
   quantify what --trace-out costs.  The section is candidate-only, so
   bench_compare reports it as INFO rather than gating on it. *)
let measure_traced ~tracer arrivals =
  let alloc =
    Allocator.create ~domains:1 ~telemetry:(Telemetry.create ()) ~tracer params
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (a : Allocator.arrival) ->
      let trace =
        Trace.start_trace tracer
          ~attrs:[ ("fid", string_of_int a.Allocator.fid) ]
          "bench.arrival"
      in
      ignore (Allocator.admit ?trace alloc a))
    arrivals;
  let wall_s = Unix.gettimeofday () -. t0 in
  Allocator.shutdown alloc;
  wall_s

(* A single 500-arrival replay finishes in tens of milliseconds, so one
   sample is dominated by scheduler noise; best-of-N isolates the real
   per-arrival cost the overhead comparison is after. *)
let best_of n f =
  let best = ref infinity in
  for _ = 1 to n do
    best := Float.min !best (f ())
  done;
  !best

let trace_section mixed =
  let n = List.length mixed in
  let reps = 5 in
  let t_off = best_of reps (fun () -> measure_traced ~tracer:Trace.noop mixed) in
  let sampled = Trace.create ~sample:0.01 () in
  let t_sampled =
    best_of reps (fun () ->
        Trace.reset sampled;
        measure_traced ~tracer:sampled mixed)
  in
  let full = Trace.create ~sample:1.0 () in
  let t_full =
    best_of reps (fun () ->
        Trace.reset full;
        measure_traced ~tracer:full mixed)
  in
  let tput t = Float.round (10.0 *. (float_of_int n /. t)) /. 10.0 in
  let overhead t = Float.round (1000.0 *. ((t -. t_off) /. t_off)) /. 10.0 in
  Printf.printf
    "trace overhead (mixed/d1):  off %9.1f arrivals/s   1%% sampled %9.1f \
     (%+.1f%%)   full %9.1f (%+.1f%%)\n"
    (tput t_off) (tput t_sampled) (overhead t_sampled) (tput t_full)
    (overhead t_full);
  let cfg t tracer =
    Json.Obj
      [
        ("arrivals_per_sec", Json.Num (tput t));
        ("overhead_pct", Json.Num (overhead t));
        ("events", Json.Num (float_of_int (Trace.length tracer)));
      ]
  in
  Json.Obj
    [
      ("workload", Json.Str "mixed");
      ("domains", Json.Num 1.0);
      ("arrivals", Json.Num (float_of_int n));
      ("off_arrivals_per_sec", Json.Num (tput t_off));
      ("sampled_1pct", cfg t_sampled sampled);
      ("full", cfg t_full full);
    ]

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

(* Environment stamp so CI comparisons are apples-to-apples: a regression
   gate should only trust records produced by the same code on a
   comparable machine. *)
let json_meta ~quick ~n =
  Json.Obj
    [
      ("git_commit", Json.Str (git_commit ()));
      ("ocaml_version", Json.Str Sys.ocaml_version);
      ("recommended_domains", Json.Num (float_of_int (Domain.recommended_domain_count ())));
      ("quick", Json.Bool quick);
      ("arrivals_per_workload", Json.Num (float_of_int n));
    ]

let json_of_run ~quick ~n ~trace stats =
  Json.Obj
    [
      ("meta", json_meta ~quick ~n);
      ("trace", trace);
      ( "baseline_seq",
        Json.Arr
          (List.map
             (fun (w, tput, p50, p99) ->
               Json.Obj
                 [
                   ("workload", Json.Str w);
                   ("domains", Json.Num 1.0);
                   ("arrivals_per_sec", Json.Num tput);
                   ("p50_ms", Json.Num p50);
                   ("p99_ms", Json.Num p99);
                 ])
             baseline) );
      ("fastpath", Json.Arr (List.map json_of_stats stats));
    ]

(* Rewrite the file but carry over sections other bench entries own
   (currently the fleet bench's "fleet" member), so running [alloc]
   after [fleet] doesn't erase the fleet numbers. *)
let write_json ~path json =
  let preserved =
    if Sys.file_exists path then begin
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string text with
      | Ok old ->
        List.filter_map
          (fun key -> Option.map (fun v -> (key, v)) (Json.member key old))
          [ "fleet"; "chaos"; "device"; "churn" ]
      | Error _ -> []
    end
    else []
  in
  let json =
    match (json, preserved) with
    | Json.Obj fields, _ :: _ ->
      Json.Obj
        (List.filter (fun (k, _) -> not (List.mem_assoc k preserved)) fields
        @ preserved)
    | _ -> json
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true json);
  output_char oc '\n';
  close_out oc

let print_stats s =
  Printf.printf
    "%-24s %5d arrivals (%d admitted)  %9.1f arrivals/s  p50 %.3f ms  p99 %.3f ms\n"
    s.label s.arrivals s.admitted (throughput s) s.p50_ms s.p99_ms;
  List.iter
    (fun name ->
      match Telemetry.hist_summary s.tel name with
      | None -> ()
      | Some h ->
        Printf.printf
          "    %-18s count %5d  total %8.1f ms  p50 %.4f ms  p99 %.4f ms\n"
          name h.Telemetry.count (1000.0 *. h.Telemetry.sum)
          (1000.0 *. h.Telemetry.p50) (1000.0 *. h.Telemetry.p99))
    phase_names

let run ~quick =
  let n = if quick then 150 else 500 in
  let n_domains = Stdx.Domain_pool.default_size () in
  Printf.printf "== Allocation fast path: admit throughput (n=%d, N=%d domains) ==\n"
    n n_domains;
  let pure = arrivals_of_trace (pure_trace ~n) in
  let mixed = arrivals_of_trace (mixed_trace ~n) in
  (* On a single-core box the recommended width is 1; still exercise the
     fan-out path at width 2 so the JSON records its overhead honestly. *)
  let fanout = if n_domains > 1 then n_domains else 2 in
  let configs = [ (1, "d1"); (fanout, Printf.sprintf "d%d" fanout) ] in
  let stats =
    List.concat_map
      (fun (domains, tag) ->
        [
          measure ~label:("pure/" ^ tag) ~workload:"pure" ~domains pure;
          measure ~label:("mixed/" ^ tag) ~workload:"mixed" ~domains mixed;
        ])
      configs
  in
  List.iter print_stats stats;
  List.iter
    (fun (w, tput, p50, p99) ->
      Printf.printf "%-24s (seed implementation)  %9.1f arrivals/s  p50 %.3f ms  p99 %.3f ms\n"
        (w ^ "/baseline") tput p50 p99)
    baseline;
  (match
     List.find_opt (fun s -> s.workload = "mixed" && s.domains = 1) stats
   with
  | Some s ->
    let base = List.assoc "mixed" (List.map (fun (w, t, _, _) -> (w, t)) baseline) in
    Printf.printf "mixed speedup vs seed baseline (1 domain): %.1fx\n"
      (throughput s /. base)
  | None -> ());
  let trace = trace_section mixed in
  write_json ~path:"BENCH_alloc.json" (json_of_run ~quick ~n ~trace stats);
  print_endline "wrote BENCH_alloc.json"
