(* Churn-at-scale benchmark (the BENCH_alloc.json "churn" section):
   simulated clients arriving under Zipf program popularity and departing
   at steady state, admitted through the batched epoch pipeline
   (Allocator.admit_batch + one batched table-write session per epoch).

     quick  50k clients (the CI smoke scale)
     full   1M clients (the ROADMAP "millions of users" scale)

   Two numbers matter:
   - measured admission throughput (arrivals / admit_batch wall time),
     gated in-binary at >= [min_batch_speedup]x over a sequential
     Allocator.admit replay of a prefix of the same trace, and against
     the committed baseline by bench_compare;
   - modeled p99 time-to-service from the deterministic virtual clock
     (machine-independent; bench_compare fails if it more than doubles). *)

module Allocator = Activermt_alloc.Allocator
module Churn = Workload.Churn
module Churn_pipeline = Experiments.Churn_pipeline
module Harness = Experiments.Harness
module Telemetry = Activermt_telemetry.Telemetry
module Json = Activermt_telemetry.Json

let params = Rmt.Params.default
let min_batch_speedup = 10.0
let target_arrivals_per_sec = 100_000.0
let seed = 4242

(* Sequential reference: the pre-batching control plane — one
   Allocator.admit per arrival — over a prefix of the same churn trace.
   A prefix because the whole point is that the sequential path cannot
   keep up; replaying all 1M clients through it would take minutes. *)
let measure_sequential ~prefix_arrivals zcfg =
  let alloc = Allocator.create ~telemetry:(Telemetry.create ()) params in
  let block_bytes = Rmt.Params.bytes_per_block params in
  let rng = Stdx.Prng.create ~seed in
  let trace = Churn.zipf_churn zcfg rng in
  let done_ = ref 0 in
  let admit_wall = ref 0.0 in
  let step (e : Churn.epoch) =
    List.iter
      (function
        | Churn.Arrive { fid; kind; _ } ->
          if !done_ < prefix_arrivals then begin
            incr done_;
            let a = Harness.arrival_of ~fid kind ~block_bytes in
            let t0 = Unix.gettimeofday () in
            ignore (Allocator.admit alloc a);
            admit_wall := !admit_wall +. (Unix.gettimeofday () -. t0)
          end
        | Churn.Depart { fid } -> ignore (Allocator.depart alloc ~fid))
      e.Churn.events;
    !done_ < prefix_arrivals
  in
  let rec loop seq =
    match seq () with
    | Seq.Nil -> ()
    | Seq.Cons (e, rest) -> if step e then loop rest
  in
  loop trace;
  Allocator.shutdown alloc;
  if !admit_wall > 0.0 then float_of_int !done_ /. !admit_wall else 0.0

let json_section ~clients ~(r : Churn_pipeline.result) ~sequential_aps ~speedup =
  let num v = Json.Num (Float.round (10.0 *. v) /. 10.0) in
  Json.Obj
    [
      ("min_batch_speedup", Json.Num min_batch_speedup);
      ("target_arrivals_per_sec", Json.Num target_arrivals_per_sec);
      ("clients", Json.Num (float_of_int clients));
      ("batch", Json.Num (float_of_int r.Churn_pipeline.batch));
      ("seed", Json.Num (float_of_int seed));
      ("epochs", Json.Num (float_of_int r.Churn_pipeline.epochs));
      ("admitted", Json.Num (float_of_int r.Churn_pipeline.admitted));
      ("rejected", Json.Num (float_of_int r.Churn_pipeline.rejected));
      ("rescored", Json.Num (float_of_int r.Churn_pipeline.rescored));
      ("memo_hits", Json.Num (float_of_int r.Churn_pipeline.memo_hits));
      ("refills_saved", Json.Num (float_of_int r.Churn_pipeline.refills_saved));
      ("batched_arrivals_per_sec", num r.Churn_pipeline.arrivals_per_sec);
      ("sequential_arrivals_per_sec", num sequential_aps);
      ("batch_speedup", Json.Num (Float.round (100.0 *. speedup) /. 100.0));
      ( "modeled_arrivals_per_sec",
        num r.Churn_pipeline.modeled_arrivals_per_sec );
      ("p50_tts_ms", Json.Num r.Churn_pipeline.p50_tts_ms);
      ("p99_tts_ms", Json.Num r.Churn_pipeline.p99_tts_ms);
    ]

(* Merge the churn section into BENCH_alloc.json without disturbing the
   sections other bench entries own. *)
let merge_into_bench_json ~path section =
  let existing =
    if Sys.file_exists path then
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.of_string text with Ok v -> Json.to_obj v | Error _ -> None
    else None
  in
  let fields =
    match existing with
    | Some fields -> List.remove_assoc "churn" fields @ [ ("churn", section) ]
    | None -> [ ("churn", section) ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true (Json.Obj fields));
  output_char oc '\n';
  close_out oc

let run ~quick =
  let clients = if quick then 50_000 else 1_000_000 in
  let prefix_arrivals = if quick then 3_000 else 10_000 in
  let zcfg = { Churn.default_zipf_config with Churn.clients } in
  Printf.printf
    "== Churn at scale: batched epoch admission (clients=%d, batch=%d) ==\n"
    clients zcfg.Churn.batch;
  let r =
    Churn_pipeline.run ~clock:Unix.gettimeofday ~params ~seed zcfg
  in
  let sequential_aps = measure_sequential ~prefix_arrivals zcfg in
  let speedup =
    if sequential_aps > 0.0 then r.Churn_pipeline.arrivals_per_sec /. sequential_aps
    else 0.0
  in
  Printf.printf
    "batched     %9.1f arrivals/s  (%d epochs, %d admitted, %d rejected, %d \
     rescored)\n"
    r.Churn_pipeline.arrivals_per_sec r.Churn_pipeline.epochs
    r.Churn_pipeline.admitted r.Churn_pipeline.rejected r.Churn_pipeline.rescored;
  Printf.printf "sequential  %9.1f arrivals/s  (prefix of %d arrivals)\n"
    sequential_aps prefix_arrivals;
  Printf.printf "speedup     %9.2fx  (gate >= %.0fx; target %.0f arrivals/s)\n"
    speedup min_batch_speedup target_arrivals_per_sec;
  Printf.printf
    "time-to-service (modeled)  p50 %.3f ms  p99 %.3f ms  max %.3f ms\n"
    r.Churn_pipeline.p50_tts_ms r.Churn_pipeline.p99_tts_ms
    r.Churn_pipeline.max_tts_ms;
  Printf.printf "fills: %d coalesced stage refills, %d saved; %d memo hits\n"
    r.Churn_pipeline.stage_refills r.Churn_pipeline.refills_saved
    r.Churn_pipeline.memo_hits;
  if r.Churn_pipeline.arrivals_per_sec < target_arrivals_per_sec then
    Printf.printf "NOTE: below the %.0f arrivals/s target on this machine\n"
      target_arrivals_per_sec;

  let tel = Telemetry.default in
  Telemetry.set_gauge tel "churn.bench.batched_arrivals_per_sec"
    r.Churn_pipeline.arrivals_per_sec;
  Telemetry.set_gauge tel "churn.bench.sequential_arrivals_per_sec" sequential_aps;
  Telemetry.set_gauge tel "churn.bench.batch_speedup" speedup;
  Telemetry.set_gauge tel "churn.bench.p99_tts_ms" r.Churn_pipeline.p99_tts_ms;

  merge_into_bench_json ~path:"BENCH_alloc.json"
    (json_section ~clients ~r ~sequential_aps ~speedup);
  print_endline "merged churn section into BENCH_alloc.json";
  if speedup < min_batch_speedup && Sys.getenv_opt "CHURN_PROFILE" = None then
    failwith
      (Printf.sprintf
         "churn bench: batched admission %.2fx over sequential, below %.1fx gate"
         speedup min_batch_speedup)
